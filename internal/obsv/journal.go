package obsv

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// JournalVersion is the schema version stamped on every journal line;
// the reader rejects lines from a different schema.
const JournalVersion = 1

// DefaultJournalQueue is the channel depth of the bounded journal
// writer: enough to absorb a burst of sub-millisecond solves, small
// enough that a wedged disk sheds load instead of growing the heap.
const DefaultJournalQueue = 1024

// defaultJournalTail bounds the in-memory tail ring served by the
// /debug/journal endpoint.
const defaultJournalTail = 256

// JournalOptions summarizes, on each journal line, the engine
// configuration that answered the query — the knobs that change which
// code path ran, so a slow line can be attributed without rerunning.
type JournalOptions struct {
	// Algorithm is the MaxSAT strategy ("maxhs", "rc2", "lsu",
	// "external").
	Algorithm string `json:"alg"`
	// Mode is the constraint mode: "keys" or "dc".
	Mode string `json:"mode"`
	// Parallelism is the resolved worker-pool size.
	Parallelism int `json:"parallel"`
	// Incremental reports the shared hard-clause base path (vs legacy).
	Incremental bool `json:"incremental"`
	// Frontend is "compiled" or "interpreted".
	Frontend string `json:"frontend"`
	// Planner is the configured planner mode ("auto", "force-sat",
	// "force-rewrite"); empty on lines written before the planner
	// existed.
	Planner string `json:"planner,omitempty"`
}

// JournalEntry is one wide event: everything the system knows about one
// engine call (solve), flattened onto a single JSON line. The journal is
// the query-level counterpart of the flight recorder — every solve gets
// a line, not just anomalies — and the replay input format: aggbench
// -replay can re-issue a recorded stream.
type JournalEntry struct {
	Version int       `json:"v"`
	Time    time.Time `json:"time"`

	// Query labels the solve: the SQL text or workload query name when
	// the caller provided one (WithQueryLabel), the engine's op label
	// otherwise. Fingerprint is a stable 64-bit FNV-1a hash of the
	// canonical algebraic query, usable as a cache/grouping key across
	// differently-labelled spellings.
	Query       string `json:"query"`
	Fingerprint string `json:"fingerprint"`
	Op          string `json:"op,omitempty"`

	// TraceID is the W3C trace id of the request that ran this solve
	// (32 lowercase hex digits), stamped when the context carried one —
	// the cross-link key into explain reports, flight bundles, cavsatd
	// responses, and retained traces.
	TraceID string `json:"trace_id,omitempty"`

	Options JournalOptions `json:"options"`

	// Answers is the number of result groups; AnswerDigest is a 64-bit
	// FNV-1a hash over the rendered answers, so two journals can be
	// diffed for answer drift without storing the answers themselves.
	Answers      int    `json:"answers"`
	AnswerDigest string `json:"answer_digest,omitempty"`

	// Route records which executor answered a range query ("rewrite" or
	// "sat"); RouteReason explains a SAT route (classifier rejection,
	// forced mode, or run-time fallback). Both are empty on operations
	// the planner does not route (consistent_answers).
	Route       string `json:"route,omitempty"`
	RouteReason string `json:"route_reason,omitempty"`

	TotalMS      float64 `json:"total_ms"`
	RewriteMS    float64 `json:"rewrite_ms,omitempty"`
	WitnessMS    float64 `json:"witness_ms"`
	ConstraintMS float64 `json:"constraint_ms"`
	EncodeMS     float64 `json:"encode_ms"`
	SolveMS      float64 `json:"solve_ms"`

	Witnesses  int64 `json:"witnesses"`
	SATCalls   int64 `json:"sat_calls"`
	MaxSATRuns int   `json:"maxsat_runs"`
	Vars       int   `json:"cnf_vars"`
	Clauses    int   `json:"cnf_clauses"`

	// Cache outcomes: per-component hard-base memo hits/misses for this
	// call, and whether the constraint context came from a cache.
	BaseHits          int64 `json:"base_hits"`
	BaseMisses        int64 `json:"base_misses"`
	ConstraintCached  bool  `json:"constraint_cached"`
	FastPathRelations int64 `json:"fastpath_rels,omitempty"`

	// Anomaly is empty on a clean solve, else the flight-recorder
	// classification: "timeout", "budget", "error", or "slow".
	// FlightBundle is the bundle file the anomaly dumped (when a dump
	// sink was configured), making journal and bundles cross-navigable.
	Anomaly      string `json:"anomaly,omitempty"`
	Error        string `json:"error,omitempty"`
	FlightBundle string `json:"flight_bundle,omitempty"`
}

// Journal is a bounded, non-blocking writer of journal lines. Append
// never blocks the solve path: entries go through a fixed-depth channel
// drained by one background goroutine; when the channel is full (disk
// stall, runaway QPS) the entry is dropped and counted instead of
// applying backpressure to queries. A bounded tail ring of recent
// entries backs the /debug/journal endpoint.
type Journal struct {
	path string
	w    io.Writer
	c    io.Closer // nil when the caller owns the writer

	ch   chan JournalEntry
	done chan struct{}

	written atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	tail []JournalEntry
	next int
}

// NewJournal starts a journal draining into w (the caller keeps
// ownership of w; Close only stops the drain). queue <= 0 means
// DefaultJournalQueue.
func NewJournal(w io.Writer, queue int) *Journal {
	if queue <= 0 {
		queue = DefaultJournalQueue
	}
	j := &Journal{
		w:    w,
		ch:   make(chan JournalEntry, queue),
		done: make(chan struct{}),
		tail: make([]JournalEntry, 0, defaultJournalTail),
	}
	go j.drain()
	return j
}

// OpenJournal opens (appending) or creates the journal file at path and
// starts a journal draining into it. Close flushes and closes the file.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obsv: opening journal: %w", err)
	}
	j := NewJournal(f, 0)
	j.path = path
	j.c = f
	return j, nil
}

// Path returns the journal's file path ("" for writer-backed journals).
// Flight bundles record it so an anomaly dump links back to its stream.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Append enqueues one entry without blocking: if the writer has fallen
// behind and the queue is full, the entry is dropped (counted in
// Dropped) rather than stalling the solve. Nil-receiver-safe, so
// instrumentation points append unconditionally.
func (j *Journal) Append(e JournalEntry) {
	if j == nil {
		return
	}
	e.Version = JournalVersion
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.mu.Lock()
	if len(j.tail) < cap(j.tail) {
		j.tail = append(j.tail, e)
	} else {
		j.tail[j.next] = e
		j.next = (j.next + 1) % len(j.tail)
	}
	j.mu.Unlock()
	select {
	case j.ch <- e:
	default:
		j.dropped.Add(1)
	}
}

// drain is the single writer goroutine: one JSON line per entry.
func (j *Journal) drain() {
	defer close(j.done)
	bw := bufio.NewWriter(j.w)
	enc := json.NewEncoder(bw)
	for e := range j.ch {
		if err := enc.Encode(e); err != nil {
			fmt.Fprintln(os.Stderr, "obsv: journal write:", err)
			continue
		}
		j.written.Add(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "obsv: journal flush:", err)
	}
}

// Close stops accepting entries, drains the queue, flushes, and closes
// the underlying file when the journal owns it. Nil-receiver-safe.
// Append after Close panics (the harness closes the journal only after
// the last query finished).
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	close(j.ch)
	<-j.done
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// Written returns the number of entries persisted so far.
func (j *Journal) Written() int64 {
	if j == nil {
		return 0
	}
	return j.written.Load()
}

// Dropped returns the number of entries shed because the queue was full.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Tail returns the most recent n appended entries in chronological
// order (all retained entries when n <= 0 or exceeds the ring).
func (j *Journal) Tail(n int) []JournalEntry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEntry, 0, len(j.tail))
	out = append(out, j.tail[j.next:]...)
	out = append(out, j.tail[:j.next]...)
	if n > 0 && n < len(out) {
		out = out[len(out)-n:]
	}
	return out
}

// WritePrometheus renders the journal's own health counters, appended to
// scrape output after the registry exposition: a growing dropped count
// means the workload outruns the journal disk.
func (j *Journal) WritePrometheus(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"# TYPE %s counter\n%s %d\n# TYPE %s counter\n%s %d\n",
		MetricJournalWritten, MetricJournalWritten, j.Written(),
		MetricJournalDropped, MetricJournalDropped, j.Dropped())
	return err
}

// JournalReader decodes a journal stream line by line (the journalread
// decoder). Blank lines are skipped; a line from a different schema
// version or malformed JSON is an error carrying the line number.
type JournalReader struct {
	sc   *bufio.Scanner
	line int
}

// NewJournalReader wraps r for streaming decode.
func NewJournalReader(r io.Reader) *JournalReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &JournalReader{sc: sc}
}

// Next returns the next entry, or io.EOF at the end of the stream.
func (jr *JournalReader) Next() (*JournalEntry, error) {
	for jr.sc.Scan() {
		jr.line++
		b := jr.sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obsv: journal line %d: %w", jr.line, err)
		}
		if e.Version != JournalVersion {
			return nil, fmt.Errorf("obsv: journal line %d: version %d, want %d", jr.line, e.Version, JournalVersion)
		}
		return &e, nil
	}
	if err := jr.sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: journal read: %w", err)
	}
	return nil, io.EOF
}

// ReadJournal decodes a whole journal stream.
func ReadJournal(r io.Reader) ([]JournalEntry, error) {
	jr := NewJournalReader(r)
	var out []JournalEntry
	for {
		e, err := jr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, *e)
	}
}

// ReadJournalFile decodes the journal at path.
func ReadJournalFile(path string) ([]JournalEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obsv: opening journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}

type journalLabelKey struct{}

// WithQueryLabel attaches a human-meaningful query label (SQL text, a
// workload query name) to the context; the engine stamps it on the
// solve's journal line in place of the default op label.
func WithQueryLabel(ctx context.Context, label string) context.Context {
	if label == "" {
		return ctx
	}
	return context.WithValue(ctx, journalLabelKey{}, label)
}

// QueryLabelFrom returns the label installed by WithQueryLabel, or "".
func QueryLabelFrom(ctx context.Context) string {
	s, _ := ctx.Value(journalLabelKey{}).(string)
	return s
}

type tenantKey struct{}

// WithTenant attaches the serving tenant (cavsatd instance name) to the
// context; the engine stamps it on labeled metric families so per-tenant
// latency and error budgets are attributable.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant installed by WithTenant, or "".
func TenantFrom(ctx context.Context) string {
	s, _ := ctx.Value(tenantKey{}).(string)
	return s
}
