package obsv

import (
	"sync"
	"time"
)

// DefaultRetainedTraces bounds a TraceStore created with capacity <= 0.
const DefaultRetainedTraces = 64

// RetainedTrace is one request trace kept by tail-based sampling: the
// request's whole span tree (its per-request tracer) plus enough request
// identity to cross-link it with the journal line, explain report, and
// flight bundle carrying the same trace id.
type RetainedTrace struct {
	TraceID TraceID
	// Reason explains why the tail-sampling decision kept this trace:
	// the request outcome ("shed", "timeout", "error"), "slow" for a
	// latency-objective breach, or "sample" for the probabilistic knob.
	Reason string
	// Query labels the request (SQL text or workload label).
	Query    string
	Tenant   string
	Start    time.Time
	Duration time.Duration
	Tracer   *Tracer
}

// TraceStore is a bounded FIFO of retained request traces backing
// /debug/trace?trace=<id> lookups. Keep never blocks and never grows
// past the capacity: the oldest retained trace is evicted. All methods
// are nil-receiver-safe so the serving path retains unconditionally.
type TraceStore struct {
	mu      sync.Mutex
	traces  []RetainedTrace // FIFO, oldest first
	byID    map[TraceID]int // trace id → index into traces
	cap     int
	kept    int64
	evicted int64
}

// NewTraceStore creates a store retaining the last capacity traces
// (DefaultRetainedTraces when capacity <= 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultRetainedTraces
	}
	return &TraceStore{
		traces: make([]RetainedTrace, 0, capacity),
		byID:   make(map[TraceID]int, capacity),
		cap:    capacity,
	}
}

// Keep retains one trace, evicting the oldest when full. A second Keep
// with the same trace id replaces the earlier entry.
func (s *TraceStore) Keep(t RetainedTrace) {
	if s == nil || t.TraceID.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byID[t.TraceID]; ok {
		s.traces[i] = t
		return
	}
	if len(s.traces) >= s.cap {
		evict := s.traces[0]
		delete(s.byID, evict.TraceID)
		copy(s.traces, s.traces[1:])
		s.traces = s.traces[:len(s.traces)-1]
		for id, i := range s.byID {
			s.byID[id] = i - 1
		}
		s.evicted++
	}
	s.byID[t.TraceID] = len(s.traces)
	s.traces = append(s.traces, t)
	s.kept++
}

// Get returns the retained trace with the given id.
func (s *TraceStore) Get(id TraceID) (RetainedTrace, bool) {
	if s == nil {
		return RetainedTrace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byID[id]
	if !ok {
		return RetainedTrace{}, false
	}
	return s.traces[i], true
}

// List returns the retained traces, oldest first.
func (s *TraceStore) List() []RetainedTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RetainedTrace, len(s.traces))
	copy(out, s.traces)
	return out
}

// Len returns the number of currently retained traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// Kept returns the number of traces ever retained; Evicted the number
// pushed out by the FIFO bound.
func (s *TraceStore) Kept() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kept
}

// Evicted returns the number of traces evicted by the FIFO bound.
func (s *TraceStore) Evicted() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}
