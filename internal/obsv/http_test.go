package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("aggcavsat_sat_calls_total").Add(3)
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "query")
	sp.End()

	srv := httptest.NewServer(Handler(reg, tr, nil))
	defer srv.Close()

	code, ct, body := get(t, srv, "/healthz")
	if code != http.StatusOK || ct != "application/json" || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %d %q %q", code, ct, body)
	}

	code, ct, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"aggcavsat_sat_calls_total 3",
		"obsv_spans_dropped_total 0",
		"obsv_spans_open 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, _, body = get(t, srv, "/debug/trace")
	if code != http.StatusOK || !strings.Contains(body, "query") {
		t.Errorf("/debug/trace = %d %q", code, body)
	}
	code, ct, body = get(t, srv, "/debug/trace?format=chrome")
	if code != http.StatusOK || ct != "application/json" || !strings.Contains(body, "traceEvents") {
		t.Errorf("/debug/trace?format=chrome = %d %q %q", code, ct, body)
	}
	code, _, _ = get(t, srv, "/debug/trace?format=bogus")
	if code != http.StatusBadRequest {
		t.Errorf("/debug/trace?format=bogus status = %d, want 400", code)
	}

	code, _, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestDebugTraceBadID pins the /debug/trace?trace= validation: ids of
// any length other than 32 hex digits — in particular longer than 32,
// which once drove hex.Decode past the 16-byte TraceID array and
// panicked the handler — must come back as a clean 400.
func TestDebugTraceBadID(t *testing.T) {
	srv := httptest.NewServer(NewHandler(HandlerConfig{
		Tracer: NewTracer(),
		Traces: NewTraceStore(4),
	}))
	defer srv.Close()

	for _, id := range []string{
		"zz",
		strings.Repeat("ab", 15),       // 30 hex digits: too short
		strings.Repeat("ab", 17),       // 34 hex digits: too long (panicked before the length check)
		strings.Repeat("ab", 16) + "g", // 33 chars, trailing non-hex
		strings.Repeat("zz", 16),       // right length, not hex
	} {
		code, _, _ := get(t, srv, "/debug/trace?trace="+id)
		if code != http.StatusBadRequest {
			t.Errorf("/debug/trace?trace=%s status = %d, want 400", id, code)
		}
	}

	// A well-formed but unretained id is a 404, not a 400.
	code, _, _ := get(t, srv, "/debug/trace?trace="+strings.Repeat("ab", 16))
	if code != http.StatusNotFound {
		t.Errorf("/debug/trace with unretained id status = %d, want 404", code)
	}
}

func TestHandlerNoTracer(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	if code, _, _ := get(t, srv, "/debug/trace"); code != http.StatusNotFound {
		t.Errorf("/debug/trace without a tracer = %d, want 404", code)
	}
	if code, _, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics without a tracer = %d, want 200", code)
	}
}

func TestServeLifecycle(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz on Serve = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestConcurrentScrapes hammers /metrics and /debug/trace while other
// goroutines mutate the registry and tracer — the scenario the -race CI
// target guards: a live scrape during a run must not race with the
// instrumentation writes.
func TestConcurrentScrapes(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer()
	srv := httptest.NewServer(Handler(reg, tr, nil))
	defer srv.Close()

	// Mutation volume is bounded (not run-until-stopped): an unthrottled
	// span producer fills the tracer ring with ~1M spans and every
	// /debug/trace scrape then serializes all of them, turning this test
	// into minutes of JSON encoding instead of a race probe.
	const iters = 2_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reg.Counter("aggcavsat_sat_calls_total").Add(1)
			reg.Gauge("aggcavsat_heap_bytes").Set(int64(i))
			reg.Histogram("aggcavsat_phase_seconds_solve", nil).Observe(0.001)
			runtime.Gosched()
		}
	}()
	go func() {
		defer wg.Done()
		ctx := WithTracer(context.Background(), tr)
		for i := 0; i < iters; i++ {
			c, sp := StartSpan(ctx, "query")
			_, inner := StartSpan(c, "sat.solve", Int64("conflicts", 1))
			inner.End()
			sp.End()
			runtime.Gosched()
		}
	}()

	for i := 0; i < 10; i++ {
		for _, path := range []string{"/metrics", "/debug/trace", "/debug/trace?format=chrome"} {
			code, _, _ := get(t, srv, path)
			if code != http.StatusOK {
				t.Errorf("%s during mutation = %d", path, code)
			}
		}
	}
	wg.Wait()
}

// TestHealthzFields decodes the /healthz payload and checks the
// build/runtime identity a dashboard needs to tell binaries apart.
func TestHealthzFields(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	code, ct, body := get(t, srv, "/healthz")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/healthz = %d %q", code, ct)
	}
	var h struct {
		Status     string  `json:"status"`
		UptimeS    float64 `json:"uptime_s"`
		GoVersion  string  `json:"go_version"`
		GOMAXPROCS int     `json:"gomaxprocs"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", h.GoVersion, runtime.Version())
	}
	if h.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d", h.GOMAXPROCS)
	}
	if h.UptimeS < 0 {
		t.Errorf("uptime_s = %f", h.UptimeS)
	}
}

// TestDebugJournal covers the /debug/journal tail endpoint against a
// live journal: default window, explicit ?n, bad n, and the 404 when no
// journal is installed.
func TestDebugJournal(t *testing.T) {
	j := NewJournal(io.Discard, 0)
	defer j.Close()
	for i := 0; i < 40; i++ {
		j.Append(JournalEntry{Query: fmt.Sprintf("q%d", i)})
	}
	srv := httptest.NewServer(Handler(NewRegistry(), nil, j))
	defer srv.Close()

	code, ct, body := get(t, srv, "/debug/journal")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/debug/journal = %d %q", code, ct)
	}
	var entries []JournalEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(entries) != 32 { // default window
		t.Errorf("default tail = %d entries, want 32", len(entries))
	}
	code, _, body = get(t, srv, "/debug/journal?n=2")
	if err := json.Unmarshal([]byte(body), &entries); err != nil || code != http.StatusOK {
		t.Fatalf("?n=2 = %d: %v", code, err)
	}
	if len(entries) != 2 || entries[1].Query != "q39" {
		t.Errorf("?n=2 tail = %+v", entries)
	}
	if code, _, _ := get(t, srv, "/debug/journal?n=zero"); code != http.StatusBadRequest {
		t.Errorf("?n=zero status = %d, want 400", code)
	}
	if code, _, _ := get(t, srv, "/debug/journal?n=-1"); code != http.StatusBadRequest {
		t.Errorf("?n=-1 status = %d, want 400", code)
	}

	// The journal's counters ride along on /metrics.
	_, _, body = get(t, srv, "/metrics")
	if !strings.Contains(body, MetricJournalWritten) {
		t.Errorf("/metrics missing %s:\n%s", MetricJournalWritten, body)
	}

	bare := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer bare.Close()
	if code, _, _ := get(t, bare, "/debug/journal"); code != http.StatusNotFound {
		t.Errorf("/debug/journal without a journal = %d, want 404", code)
	}
}
