package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteTree renders the trace as a human-readable indented tree, one
// span per line with its wall time and attributes, children beneath
// their parents in start order:
//
//	query 12.4ms
//	  sql.parse 0.2ms
//	  query.range_answers 12.1ms op=SUM groups=3
//	    cq.witness 1.4ms witnesses=42
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := t.Spans()
	children := make(map[int32][]*Span)
	for _, sp := range spans {
		children[sp.parent] = append(children[sp.parent], sp)
	}
	var walk func(parent int32, depth int) error
	walk = func(parent int32, depth int) error {
		for _, sp := range children[parent] {
			dur := "open"
			if sp.done {
				dur = sp.Duration().Round(time.Microsecond).String()
			}
			line := strings.Repeat("  ", depth) + sp.Name + " " + dur
			for _, a := range sp.Attrs {
				if a.IsInt {
					line += fmt.Sprintf(" %s=%d", a.Key, a.Int)
				} else {
					line += fmt.Sprintf(" %s=%s", a.Key, a.Str)
				}
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			if err := walk(sp.id, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(-1, 0); err != nil {
		return err
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(... %d spans dropped beyond MaxSpans)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the trace in Chrome trace-event JSON. Open
// chrome://tracing (or https://ui.perfetto.dev) and load the file to see
// the parse → witness → encode → solve waterfall. Unfinished spans are
// emitted with zero duration.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var origin time.Time
	for i, sp := range spans {
		if i == 0 || sp.Start.Before(origin) {
			origin = sp.Start
		}
	}
	// All spans share one pid/tid: complete events on the same track
	// nest by time containment, which matches the caller hierarchy.
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		var args map[string]any
		if len(sp.Attrs) > 0 {
			args = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				if a.IsInt {
					args[a.Key] = a.Int
				} else {
					args[a.Key] = a.Str
				}
			}
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  category(sp.Name),
			Ph:   "X",
			Ts:   float64(sp.Start.Sub(origin)) / float64(time.Microsecond),
			Dur:  float64(sp.Duration()) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	// Chrome sorts by ts itself, but a deterministic file is easier to
	// diff and test against.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// category maps a span name to its trace category (the part before the
// first dot), so Perfetto can color phases consistently.
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}
