package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "query")
	if root == nil {
		t.Fatal("StartSpan returned nil span with tracer installed")
	}
	ctx2, child := StartSpan(ctx1, "sql.parse")
	child.End()
	_, child2 := StartSpan(ctx1, "query.range_answers", String("op", "SUM"))
	child2.SetInt("groups", 3)
	child2.End()
	root.End()
	_ = ctx2

	if got := tr.Open(); got != 0 {
		t.Errorf("Open() = %d after ending every span", got)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("Len = %d, want 3", len(spans))
	}
	if spans[0].parent != -1 {
		t.Errorf("root parent = %d", spans[0].parent)
	}
	if spans[1].parent != spans[0].id || spans[2].parent != spans[0].id {
		t.Errorf("children not parented to root: %d %d", spans[1].parent, spans[2].parent)
	}
	if spans[2].Attrs[0].Str != "SUM" || spans[2].Attrs[1].Int != 3 {
		t.Errorf("attrs = %+v", spans[2].Attrs)
	}
}

func TestTracerFrom(t *testing.T) {
	if TracerFrom(context.Background()) != nil {
		t.Error("TracerFrom on bare context")
	}
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Error("TracerFrom lost the tracer")
	}
	if WithTracer(context.Background(), nil) != context.Background() {
		t.Error("WithTracer(nil) should return ctx unchanged")
	}
}

func TestDisabledSpanIsNil(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("span without tracer should be nil")
	}
	// Every method must be a no-op on nil.
	sp.End()
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	if sp.Duration() != 0 {
		t.Error("nil span duration")
	}
	if ctx != context.Background() {
		t.Error("context must be unchanged when disabled")
	}
}

// TestDisabledSpanAllocs pins the acceptance criterion: the disabled
// tracer hot path is a nil check with zero allocations.
func TestDisabledSpanAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "hot.path")
		sp.SetInt("n", 42)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Errorf("disabled StartSpan allocates %v times per op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "hot.path")
		sp.SetInt("n", int64(i))
		sp.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	tr.MaxSpans = b.N + 10
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "hot.path")
		sp.End()
	}
}

func TestMaxSpansDrops(t *testing.T) {
	tr := NewTracer()
	tr.MaxSpans = 2
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Errorf("Len=%d Dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	if tr.Open() != 0 {
		t.Errorf("dropped spans must not leak open count: %d", tr.Open())
	}
}

func TestWriteTree(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "query")
	_, c := StartSpan(ctx1, "cq.witness")
	c.SetInt("witnesses", 7)
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "query ") {
		t.Errorf("missing root:\n%s", out)
	}
	if !strings.Contains(out, "  cq.witness ") || !strings.Contains(out, "witnesses=7") {
		t.Errorf("missing indented child with attr:\n%s", out)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "query")
	_, c := StartSpan(ctx1, "maxsat.solve", String("alg", "maxhs"))
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("phase = %q", ev.Ph)
		}
	}
	// The child must be contained in the root's [ts, ts+dur] window —
	// that is what makes the spans nest in the viewer.
	rootEv, childEv := parsed.TraceEvents[0], parsed.TraceEvents[1]
	if rootEv.Name != "query" {
		rootEv, childEv = childEv, rootEv
	}
	if childEv.Ts < rootEv.Ts || childEv.Ts+childEv.Dur > rootEv.Ts+rootEv.Dur+1e-3 {
		t.Errorf("child [%f,%f] not nested in root [%f,%f]",
			childEv.Ts, childEv.Ts+childEv.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
	}
	if childEv.Cat != "maxsat" || childEv.Args["alg"] != "maxhs" {
		t.Errorf("child cat/args: %q %v", childEv.Cat, childEv.Args)
	}
}
