package obsv

import (
	"math"
	"testing"
	"time"
)

// sloHarness drives an SLOTracker on a fake clock with a mutable
// cumulative counter source.
type sloHarness struct {
	now    time.Time
	counts SLOCounts
	tr     *SLOTracker
}

func newSLOHarness(objective float64) *sloHarness {
	h := &sloHarness{now: time.Unix(1_700_000_000, 0)}
	h.tr = &SLOTracker{
		Source:                func() SLOCounts { return h.counts },
		AvailabilityObjective: objective,
		LatencyObjective:      objective,
		LatencyTarget:         250 * time.Millisecond,
		Now:                   func() time.Time { return h.now },
	}
	return h
}

func (h *sloHarness) tick(d time.Duration, add SLOCounts) {
	h.now = h.now.Add(d)
	h.counts.Total += add.Total
	h.counts.Good += add.Good
	h.counts.LatencyTotal += add.LatencyTotal
	h.counts.LatencyOK += add.LatencyOK
	h.tr.Observe()
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestSLOTrackerZeroTraffic(t *testing.T) {
	h := newSLOHarness(0.999)
	rep := h.tr.Report()
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(rep.Objectives))
	}
	for _, o := range rep.Objectives {
		if o.Attainment != 1 {
			t.Errorf("%s attainment = %v on zero traffic, want 1", o.Name, o.Attainment)
		}
		for _, w := range o.Windows {
			if w.Attainment != 1 || w.BurnRate != 0 {
				t.Errorf("%s %s: attainment=%v burn=%v on zero traffic", o.Name, w.Window, w.Attainment, w.BurnRate)
			}
		}
	}
}

func TestSLOTrackerBurnRates(t *testing.T) {
	h := newSLOHarness(0.99) // error budget 1%
	// One hour of history at one sample per minute: steady 100 req/min,
	// 99 good (burn exactly 1.0), all fast.
	for i := 0; i < 60; i++ {
		h.tick(time.Minute, SLOCounts{Total: 100, Good: 99, LatencyTotal: 100, LatencyOK: 100})
	}
	rep := h.tr.Report()
	avail := rep.Objectives[0]
	if avail.Name != "availability" {
		t.Fatalf("objective order: %s first", avail.Name)
	}
	if !approx(avail.Attainment, 0.99) {
		t.Fatalf("all-time attainment = %v, want 0.99", avail.Attainment)
	}
	for _, w := range avail.Windows {
		if !approx(w.Attainment, 0.99) {
			t.Errorf("%s attainment = %v, want 0.99", w.Window, w.Attainment)
		}
		if !approx(w.BurnRate, 1.0) {
			t.Errorf("%s burn = %v, want 1.0 (erring exactly at budget)", w.Window, w.BurnRate)
		}
	}

	// Five error-free minutes: the 5m window heals to burn 0 while the
	// 1h window still carries the bad hour.
	for i := 0; i < 5; i++ {
		h.tick(time.Minute, SLOCounts{Total: 100, Good: 100, LatencyTotal: 100, LatencyOK: 100})
	}
	rep = h.tr.Report()
	avail = rep.Objectives[0]
	w5, w1h := avail.Windows[0], avail.Windows[1]
	if w5.Window != "5m0s" || w1h.Window != "1h0m0s" {
		t.Fatalf("window order: %s, %s", w5.Window, w1h.Window)
	}
	if !approx(w5.Attainment, 1) || w5.BurnRate != 0 {
		t.Errorf("5m window did not heal: attainment=%v burn=%v", w5.Attainment, w5.BurnRate)
	}
	if w1h.BurnRate <= 0.5 {
		t.Errorf("1h burn = %v, want it still elevated", w1h.BurnRate)
	}

	// Latency objective reads the latency counters: all requests were
	// within target throughout.
	lat := rep.Objectives[1]
	if lat.Name != "latency" || !approx(lat.Attainment, 1) {
		t.Errorf("latency attainment = %v, want 1", lat.Attainment)
	}
	if lat.TargetMS != 250 {
		t.Errorf("latency target = %vms, want 250", lat.TargetMS)
	}
}

func TestSLOTrackerSamplingGap(t *testing.T) {
	h := newSLOHarness(0.999)
	h.tick(time.Second, SLOCounts{Total: 1, Good: 1})
	// Sub-second observations are coalesced into the previous sample.
	for i := 0; i < 10; i++ {
		h.tick(100*time.Millisecond, SLOCounts{Total: 1, Good: 1})
	}
	h.tr.mu.Lock()
	n := len(h.tr.samples)
	h.tr.mu.Unlock()
	if n > 3 {
		t.Fatalf("sample ring grew to %d entries for ~2s of wall clock", n)
	}
	// The report still reads the live source, not the last sample.
	rep := h.tr.Report()
	if got := rep.Objectives[0].Total; got != 11 {
		t.Fatalf("report total = %d, want the live 11", got)
	}
}

// TestSLOCountsFromLabeledFamilies pins the reconciliation contract the
// server relies on: an SLO source computed from a labeled counter and
// histogram agrees with direct family arithmetic.
func TestSLOCountsFromLabeledFamilies(t *testing.T) {
	reg := NewRegistry()
	labels := []string{"tenant", "route", "outcome"}
	req := reg.LabeledCounter("requests_total", labels, 16)
	dur := reg.LabeledHistogram("request_seconds", labels, []float64{0.25, 1}, 16)

	obs := func(tenant, route, outcome string, sec float64) {
		req.With(tenant, route, outcome).Inc()
		dur.With(tenant, route, outcome).Observe(sec)
	}
	obs("a", "sat", "ok", 0.1)
	obs("a", "rewrite", "ok", 0.2)
	obs("a", "sat", "ok", 0.9) // ok but over the 0.25 target
	obs("b", "none", "error", 0.1)
	obs("b", "none", "shed", 0.01)

	isOK := func(values []string) bool { return values[2] == "ok" }
	under, latTotal := dur.CountUnder(0.25, isOK)
	counts := SLOCounts{
		Total:        req.Sum(nil),
		Good:         req.Sum(isOK),
		LatencyTotal: latTotal,
		LatencyOK:    under,
	}
	want := SLOCounts{Total: 5, Good: 3, LatencyTotal: 3, LatencyOK: 2}
	if counts != want {
		t.Fatalf("counts = %+v, want %+v", counts, want)
	}
}
