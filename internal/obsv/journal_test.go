package obsv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf, 0)
	for i := 0; i < 5; i++ {
		j.Append(JournalEntry{
			Query:    fmt.Sprintf("Q%d", i),
			Op:       "range_answers/SUM",
			TotalMS:  float64(i),
			SATCalls: int64(i * 3),
			Options:  JournalOptions{Algorithm: "maxhs", Mode: "keys", Incremental: true},
		})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Written() != 5 || j.Dropped() != 0 {
		t.Fatalf("written/dropped = %d/%d, want 5/0", j.Written(), j.Dropped())
	}
	entries, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("decoded %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Version != JournalVersion {
			t.Errorf("entry %d version = %d", i, e.Version)
		}
		if e.Query != fmt.Sprintf("Q%d", i) || e.SATCalls != int64(i*3) {
			t.Errorf("entry %d = %+v", i, e)
		}
		if e.Time.IsZero() {
			t.Errorf("entry %d missing timestamp", i)
		}
		if e.Options.Algorithm != "maxhs" || !e.Options.Incremental {
			t.Errorf("entry %d options = %+v", i, e.Options)
		}
	}
}

func TestOpenJournalAppendsAcrossSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	for session := 0; session < 2; session++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if j.Path() != path {
			t.Errorf("Path = %q", j.Path())
		}
		j.Append(JournalEntry{Query: fmt.Sprintf("s%d", session)})
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Query != "s0" || entries[1].Query != "s1" {
		t.Fatalf("entries = %+v, want s0 then s1 (append semantics)", entries)
	}
}

// blockedWriter blocks every Write until released, standing in for a
// stalled disk.
type blockedWriter struct{ release chan struct{} }

func (w *blockedWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestJournalAppendNeverBlocks(t *testing.T) {
	bw := &blockedWriter{release: make(chan struct{})}
	j := NewJournal(bw, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Far more appends than queue depth against a wedged writer:
		// every one must return immediately, shedding the excess.
		for i := 0; i < 1000; i++ {
			j.Append(JournalEntry{Query: "hammer"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked on a stalled writer")
	}
	if j.Dropped() == 0 {
		t.Error("no drops recorded despite a wedged writer")
	}
	close(bw.release) // unwedge so Close can drain
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Written() + j.Dropped(); got != 1000 {
		t.Errorf("written+dropped = %d, want 1000 (no entry lost untracked)", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(JournalEntry{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Written() != 0 || j.Dropped() != 0 || j.Path() != "" || j.Tail(3) != nil {
		t.Error("nil journal accessors must return zero values")
	}
}

func TestJournalTailRing(t *testing.T) {
	j := NewJournal(io.Discard, 0)
	defer j.Close()
	n := defaultJournalTail + 10
	for i := 0; i < n; i++ {
		j.Append(JournalEntry{Query: fmt.Sprintf("q%d", i)})
	}
	tail := j.Tail(0)
	if len(tail) != defaultJournalTail {
		t.Fatalf("full tail = %d entries, want %d", len(tail), defaultJournalTail)
	}
	if got := tail[len(tail)-1].Query; got != fmt.Sprintf("q%d", n-1) {
		t.Errorf("newest tail entry = %q", got)
	}
	if got := tail[0].Query; got != fmt.Sprintf("q%d", n-defaultJournalTail) {
		t.Errorf("oldest tail entry = %q (ring rotation broken)", got)
	}
	last3 := j.Tail(3)
	if len(last3) != 3 || last3[2].Query != fmt.Sprintf("q%d", n-1) {
		t.Errorf("Tail(3) = %+v", last3)
	}
}

func TestJournalReaderRejectsVersionAndGarbage(t *testing.T) {
	bad := `{"v":99,"query":"future"}` + "\n"
	if _, err := ReadJournal(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
	garbage := `{"v":1,"query":"ok"}` + "\nnot json\n"
	entries, err := ReadJournal(strings.NewReader(garbage))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("malformed line not rejected with its line number: %v", err)
	}
	if len(entries) != 1 {
		t.Errorf("entries before the bad line = %d, want 1", len(entries))
	}
}

func TestJournalWritePrometheus(t *testing.T) {
	j := NewJournal(io.Discard, 0)
	j.Append(JournalEntry{})
	j.Close()
	var buf bytes.Buffer
	if err := j.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE " + MetricJournalWritten + " counter",
		MetricJournalWritten + " 1",
		MetricJournalDropped + " 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

func TestQueryLabelContext(t *testing.T) {
	ctx := context.Background()
	if got := QueryLabelFrom(ctx); got != "" {
		t.Errorf("label on empty context = %q", got)
	}
	if got := QueryLabelFrom(WithQueryLabel(ctx, "Q1")); got != "Q1" {
		t.Errorf("label = %q", got)
	}
	if WithQueryLabel(ctx, "") != ctx {
		t.Error("empty label must not allocate a context")
	}
}

// TestJournalConcurrentAppend hammers Append and Tail from many
// goroutines (the -race target): the solve hot path appends from
// parallel workers while /debug/journal reads the tail.
func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal(io.Discard, 8)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Append(JournalEntry{Query: fmt.Sprintf("w%d", w)})
				if i%17 == 0 {
					j.Tail(16)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Written() + j.Dropped(); got != workers*per {
		t.Errorf("written+dropped = %d, want %d", got, workers*per)
	}
}

func TestJournalEntryJSONShape(t *testing.T) {
	// The wide-event schema is an interface consumed by external tooling
	// (jq, the CI smoke step): pin the key field names.
	e := JournalEntry{Query: "Q1", Anomaly: "slow", FlightBundle: "b.json"}
	e.Version = JournalVersion
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"v":1`, `"query":"Q1"`, `"anomaly":"slow"`, `"flight_bundle":"b.json"`, `"total_ms"`, `"sat_calls"`, `"options"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s:\n%s", key, b)
		}
	}
	if strings.Contains(string(b), `"error"`) {
		t.Errorf("empty error field must be omitted:\n%s", b)
	}
}
