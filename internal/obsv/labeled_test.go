package obsv

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLabeledCounterSeries(t *testing.T) {
	reg := NewRegistry()
	lc := reg.LabeledCounter("req_total", []string{"route", "outcome"}, 4)
	lc.With("sat", "ok").Add(3)
	lc.With("sat", "ok").Inc()
	lc.With("rewrite", "ok").Inc()
	if got := lc.With("sat", "ok").Value(); got != 4 {
		t.Fatalf("series value = %d, want 4 (same tuple must hit the same series)", got)
	}
	if got := lc.Sum(nil); got != 5 {
		t.Fatalf("family sum = %d, want 5", got)
	}
	onlySat := func(values []string) bool { return values[0] == "sat" }
	if got := lc.Sum(onlySat); got != 4 {
		t.Fatalf("filtered sum = %d, want 4", got)
	}
	// A later fetch with nil labels returns the same family; different
	// labels panic.
	if reg.LabeledCounter("req_total", nil, 0) != lc {
		t.Fatal("re-fetch returned a different family")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("re-registering with different labels did not panic")
			}
		}()
		reg.LabeledCounter("req_total", []string{"tenant"}, 0)
	}()
}

func TestLabeledCounterOverflowCap(t *testing.T) {
	reg := NewRegistry()
	const cap = 3
	lc := reg.LabeledCounter("capped_total", []string{"tenant"}, cap)
	for i := 0; i < 10*cap; i++ {
		lc.With(fmt.Sprintf("t%02d", i)).Inc()
	}
	// The registry holds at most cap real series plus the overflow series.
	snap := reg.Snapshot()
	live := 0
	for name := range snap.Counters {
		if strings.HasPrefix(name, "capped_total{") {
			live++
		}
	}
	if live != cap+1 {
		t.Fatalf("live series = %d, want cap+overflow = %d", live, cap+1)
	}
	over := snap.Counters[`capped_total{tenant="_overflow"}`]
	if over != int64(10*cap-cap) {
		t.Fatalf("overflow absorbed %d, want %d", over, 10*cap-cap)
	}
	if got := lc.Sum(nil); got != 10*cap {
		t.Fatalf("sum = %d, want %d (overflow must count)", got, 10*cap)
	}
	// Tuples seen before the cap keep their own series afterwards.
	lc.With("t00").Inc()
	if got := lc.With("t00").Value(); got != 2 {
		t.Fatalf("pre-cap series value = %d, want 2", got)
	}
}

// TestLabeledCardinalityHammer slams one small-capped family from many
// goroutines with far more distinct tuples than the cap and asserts the
// bound held and no increment was lost. Run under -race this also
// exercises the resolve() fast/slow paths for data races.
func TestLabeledCardinalityHammer(t *testing.T) {
	reg := NewRegistry()
	const cap = 8
	lc := reg.LabeledCounter("hammer_total", []string{"tenant", "route"}, cap)
	lh := reg.LabeledHistogram("hammer_seconds", []string{"tenant", "route"}, []float64{0.1, 1}, cap)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tenant := fmt.Sprintf("w%d-t%d", w, i%37)
				lc.With(tenant, "sat").Inc()
				lh.With(tenant, "sat").Observe(0.05)
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	counters, hists := 0, 0
	for name := range snap.Counters {
		if strings.HasPrefix(name, "hammer_total{") {
			counters++
		}
	}
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "hammer_seconds{") {
			hists++
		}
	}
	if counters > cap+1 || hists > cap+1 {
		t.Fatalf("cardinality bound violated: %d counter / %d histogram series, cap %d(+overflow)", counters, hists, cap)
	}
	if got := lc.Sum(nil); got != workers*perWorker {
		t.Fatalf("sum = %d, want %d (no increment may be lost to overflow rerouting)", got, workers*perWorker)
	}
	if under, total := lh.CountUnder(0.1, nil); total != workers*perWorker || under != total {
		t.Fatalf("histogram counts = %d/%d, want %d/%d", under, total, workers*perWorker, workers*perWorker)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	lc := reg.LabeledCounter("esc_total", []string{"q"}, 4)
	lc.With(`say "hi"\` + "\n").Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{q="say \"hi\"\\\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing escaped series %q:\n%s", want, sb.String())
	}
}

// TestLabeledPrometheusGolden pins the labeled exposition byte-for-byte:
// one TYPE line per family, series sorted, histogram buckets merging the
// series labels with le, and _sum/_count carrying the label set.
func TestLabeledPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total").Add(7)
	lc := reg.LabeledCounter("req_total", []string{"route", "outcome"}, 2)
	lc.With("sat", "ok").Add(3)
	lc.With("rewrite", "ok").Inc()
	lc.With("spill", "error").Inc() // past cap → overflow
	lh := reg.LabeledHistogram("lat_seconds", []string{"route"}, []float64{1, 10}, 4)
	h := lh.With("sat")
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(20)
	lh.With("rewrite").Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE plain_total counter
plain_total 7
# TYPE req_total counter
req_total{route="_overflow",outcome="_overflow"} 1
req_total{route="rewrite",outcome="ok"} 1
req_total{route="sat",outcome="ok"} 3
# TYPE lat_seconds histogram
lat_seconds_bucket{route="rewrite",le="1"} 0
lat_seconds_bucket{route="rewrite",le="10"} 1
lat_seconds_bucket{route="rewrite",le="+Inf"} 1
lat_seconds_sum{route="rewrite"} 2
lat_seconds_count{route="rewrite"} 1
lat_seconds_bucket{route="sat",le="1"} 1
lat_seconds_bucket{route="sat",le="10"} 2
lat_seconds_bucket{route="sat",le="+Inf"} 3
lat_seconds_sum{route="sat"} 25.5
lat_seconds_count{route="sat"} 3
`
	if got := sb.String(); got != want {
		t.Fatalf("labeled exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabeledFamilyReservesBareName(t *testing.T) {
	reg := NewRegistry()
	reg.LabeledCounter("fam_total", []string{"route"}, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("plain counter under a labeled family name did not panic")
			}
		}()
		reg.Counter("fam_total")
	}()
	// The family's own series names stay allowed.
	reg.Counter(`fam_total{route="sat"}`).Inc()
}
