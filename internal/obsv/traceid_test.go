package obsv

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned the all-zero id")
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %s", id)
		}
		seen[id] = true
	}
	if s := NewSpanID(); s.IsZero() {
		t.Fatal("NewSpanID returned the all-zero id")
	}
}

func TestDeriveSpanIDDeterministicPerIndex(t *testing.T) {
	tr := NewTraceID()
	a, b := deriveSpanID(tr, 0), deriveSpanID(tr, 1)
	if a.IsZero() || b.IsZero() {
		t.Fatal("derived span id is zero")
	}
	if a == b {
		t.Fatal("distinct indices derived the same span id")
	}
	if a != deriveSpanID(tr, 0) {
		t.Fatal("deriveSpanID is not deterministic")
	}
}

func TestTraceparentRoundtrip(t *testing.T) {
	tc := NewTraceContext()
	hdr := tc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") {
		t.Fatalf("traceparent %q has the wrong shape", hdr)
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != tc {
		t.Fatalf("roundtrip drifted: %+v vs %+v", got, tc)
	}
}

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name    string
		in      string
		ok      bool
		sampled bool
	}{
		{"valid sampled", valid, true, true},
		{"valid unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true, false},
		{"future version with suffix", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true, true},
		{"future version with undelimited suffix", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01garbage", false, false},
		{"empty", "", false, false},
		{"truncated", valid[:54], false, false},
		{"version 00 with trailing junk", valid + "-extra", false, false},
		{"version ff", "ff" + valid[2:], false, false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false, false},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01", false, false},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false, false},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false, false},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01", false, false},
		{"misplaced dashes", "004-bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false, false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			tc, err := ParseTraceparent(tt.in)
			if tt.ok != (err == nil) {
				t.Fatalf("ParseTraceparent(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			}
			if err != nil {
				return
			}
			if tc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
				t.Errorf("trace id = %s", tc.TraceID)
			}
			if tc.SpanID.String() != "00f067aa0ba902b7" {
				t.Errorf("span id = %s", tc.SpanID)
			}
			if tc.Sampled != tt.sampled {
				t.Errorf("sampled = %v, want %v", tc.Sampled, tt.sampled)
			}
		})
	}
}

func TestTraceIDFromContextPrecedence(t *testing.T) {
	if got := TraceIDFromContext(context.Background()); got != "" {
		t.Fatalf("bare context trace id = %q, want empty", got)
	}

	// Tracer alone: its trace id wins.
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if got := TraceIDFromContext(ctx); got != tr.TraceID().String() {
		t.Fatalf("tracer-only trace id = %q, want %s", got, tr.TraceID())
	}

	// An explicit TraceContext outranks the tracer.
	tc := NewTraceContext()
	ctx = WithTraceContext(ctx, tc)
	if got := TraceIDFromContext(ctx); got != tc.TraceID.String() {
		t.Fatalf("trace id = %q, want the explicit context %s", got, tc.TraceID)
	}

	// A zero trace context installs nothing.
	ctx2 := WithTraceContext(context.Background(), TraceContext{})
	if _, ok := TraceContextFrom(ctx2); ok {
		t.Fatal("zero TraceContext was installed")
	}
}

func TestTracerSpanIDsBelongToTrace(t *testing.T) {
	tr := NewTracerWithID(NewTraceID())
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	if root.SpanID().IsZero() || child.SpanID().IsZero() {
		t.Fatal("span ids not assigned")
	}
	if root.SpanID() == child.SpanID() {
		t.Fatal("root and child share a span id")
	}
	// Same indices on the same trace id derive the same span ids.
	if root.SpanID() != deriveSpanID(tr.TraceID(), 0) {
		t.Fatal("root span id does not derive from the trace id")
	}
	child.End()
	root.End()
}
