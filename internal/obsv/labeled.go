package obsv

import (
	"sort"
	"strings"
	"sync"
)

// OverflowLabel is the label value that absorbs every label tuple seen
// after a labeled family reached its cardinality cap. A scrape showing
// `family{...="_overflow"}` with a growing count means the workload
// produces more distinct label tuples than the family was provisioned
// for — the family stays bounded instead of growing without limit.
const OverflowLabel = "_overflow"

// DefaultLabeledSeries is the per-family series cap used when a labeled
// family is created with maxSeries <= 0.
const DefaultLabeledSeries = 64

// escapeLabelValue escapes a label value per the Prometheus 0.0.4 text
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// seriesName renders the canonical full series name for a label tuple:
// `family{k1="v1",k2="v2"}` with labels in declared order and values
// escaped. The canonical form keys the registry maps and is what the
// exposition prints, so equal tuples always hit the same series.
func seriesName(family string, labels, values []string) string {
	var b strings.Builder
	b.Grow(len(family) + 16*len(labels))
	b.WriteString(family)
	b.WriteByte('{')
	for i, k := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labeledFamily is the shared cardinality-bounding core of
// LabeledCounter and LabeledHistogram: a map from the canonical value
// tuple to a live series, capped at maxSeries distinct tuples, with an
// all-_overflow series absorbing the excess.
type labeledFamily struct {
	family string
	labels []string
	max    int

	mu     sync.RWMutex
	series map[string][]string // canonical series name → label values
}

func newLabeledFamily(family string, labels []string, maxSeries int) *labeledFamily {
	if len(labels) == 0 {
		panic("obsv: labeled family " + family + " needs at least one label")
	}
	if maxSeries <= 0 {
		maxSeries = DefaultLabeledSeries
	}
	return &labeledFamily{
		family: family,
		labels: append([]string(nil), labels...),
		max:    maxSeries,
		series: map[string][]string{},
	}
}

// resolve maps a label tuple to its canonical series name, rerouting to
// the overflow tuple when the tuple is new and the family is at cap.
// The overflow series itself never counts against the cap, so a family
// holds at most max+1 live series.
func (f *labeledFamily) resolve(values []string) string {
	if len(values) != len(f.labels) {
		panic("obsv: labeled family " + f.family + " called with wrong label count")
	}
	name := seriesName(f.family, f.labels, values)
	f.mu.RLock()
	_, ok := f.series[name]
	n := len(f.series)
	f.mu.RUnlock()
	if ok {
		return name
	}
	if n >= f.max {
		return f.overflowName()
	}
	f.mu.Lock()
	if _, ok := f.series[name]; !ok {
		if len(f.series) >= f.max {
			f.mu.Unlock()
			return f.overflowName()
		}
		f.series[name] = append([]string(nil), values...)
	}
	f.mu.Unlock()
	return name
}

func (f *labeledFamily) overflowName() string {
	values := make([]string, len(f.labels))
	for i := range values {
		values[i] = OverflowLabel
	}
	return seriesName(f.family, f.labels, values)
}

func (f *labeledFamily) overflowValues() []string {
	values := make([]string, len(f.labels))
	for i := range values {
		values[i] = OverflowLabel
	}
	return values
}

// snapshotSeries returns every live (series name, values) pair in
// deterministic order, the overflow series last when materialized.
func (f *labeledFamily) snapshotSeries(overflowLive func(string) bool) (names []string, values [][]string) {
	f.mu.RLock()
	names = make([]string, 0, len(f.series)+1)
	for name := range f.series {
		names = append(names, name)
	}
	f.mu.RUnlock()
	sort.Strings(names)
	if on := f.overflowName(); overflowLive(on) {
		names = append(names, on)
	}
	values = make([][]string, len(names))
	for i, name := range names {
		f.mu.RLock()
		v, ok := f.series[name]
		f.mu.RUnlock()
		if !ok {
			v = f.overflowValues()
		}
		values[i] = append([]string(nil), v...)
	}
	return names, values
}

// LabeledCounter is a cardinality-bounded family of counters sharing one
// metric name and a fixed label schema. With returns the series for a
// label tuple, creating it on first use; past the per-family cap, unseen
// tuples share the all-_overflow series. Series live in the owning
// Registry under their canonical `family{k="v",...}` name, so snapshots
// and the Prometheus exposition pick them up with no extra plumbing.
type LabeledCounter struct {
	f   *labeledFamily
	reg *Registry
}

// With returns the counter for the given label values (declared order).
func (lc *LabeledCounter) With(values ...string) *Counter {
	return lc.reg.Counter(lc.f.resolve(values))
}

// Labels returns the family's label names in declared order.
func (lc *LabeledCounter) Labels() []string { return append([]string(nil), lc.f.labels...) }

// Sum totals every live series whose label values pass the filter (a
// nil filter sums the whole family, overflow included). The filter sees
// values aligned with Labels().
func (lc *LabeledCounter) Sum(filter func(values []string) bool) int64 {
	names, values := lc.f.snapshotSeries(func(on string) bool {
		lc.reg.mu.RLock()
		_, ok := lc.reg.counters[on]
		lc.reg.mu.RUnlock()
		return ok
	})
	var total int64
	for i, name := range names {
		if filter != nil && !filter(values[i]) {
			continue
		}
		lc.reg.mu.RLock()
		c, ok := lc.reg.counters[name]
		lc.reg.mu.RUnlock()
		if ok {
			total += c.Value()
		}
	}
	return total
}

// LabeledHistogram is the histogram sibling of LabeledCounter: one
// bucket layout shared by every series of the family, the same
// cardinality cap and _overflow policy.
type LabeledHistogram struct {
	f       *labeledFamily
	reg     *Registry
	buckets []float64
}

// With returns the histogram for the given label values.
func (lh *LabeledHistogram) With(values ...string) *Histogram {
	return lh.reg.Histogram(lh.f.resolve(values), lh.buckets)
}

// Labels returns the family's label names in declared order.
func (lh *LabeledHistogram) Labels() []string { return append([]string(nil), lh.f.labels...) }

// Buckets returns the family's bucket upper bounds.
func (lh *LabeledHistogram) Buckets() []float64 { return append([]float64(nil), lh.buckets...) }

// CountUnder returns (observations ≤ limit, total observations) across
// every live series passing the filter. limit is matched against the
// bucket upper bounds (the largest bound ≤ limit is used), so callers
// that need exact attainment — the SLO plane — must provision limit as
// a bucket bound.
func (lh *LabeledHistogram) CountUnder(limit float64, filter func(values []string) bool) (under, total int64) {
	names, values := lh.f.snapshotSeries(func(on string) bool {
		lh.reg.mu.RLock()
		_, ok := lh.reg.histograms[on]
		lh.reg.mu.RUnlock()
		return ok
	})
	for i, name := range names {
		if filter != nil && !filter(values[i]) {
			continue
		}
		lh.reg.mu.RLock()
		h, ok := lh.reg.histograms[name]
		lh.reg.mu.RUnlock()
		if !ok {
			continue
		}
		for b, ub := range h.buckets {
			c := h.counts[b].Load()
			if ub <= limit {
				under += c
			}
			total += c
		}
		total += h.inf.Load()
	}
	return under, total
}

// LabeledCounter returns the named labeled counter family, creating it
// on first use with the given label names and per-family series cap
// (maxSeries <= 0 means DefaultLabeledSeries). Later calls may pass nil
// labels and zero maxSeries; passing different label names is a
// programming error and panics.
func (r *Registry) LabeledCounter(family string, labels []string, maxSeries int) *LabeledCounter {
	r.mu.RLock()
	lc, ok := r.labeledCounters[family]
	r.mu.RUnlock()
	if ok {
		checkSameLabels(family, lc.f.labels, labels)
		return lc
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if lc, ok := r.labeledCounters[family]; ok {
		checkSameLabels(family, lc.f.labels, labels)
		return lc
	}
	r.checkFree(family, "labeled counter")
	lc = &LabeledCounter{f: newLabeledFamily(family, labels, maxSeries), reg: r}
	r.labeledCounters[family] = lc
	return lc
}

// LabeledHistogram returns the named labeled histogram family, creating
// it on first use with the given label names, bucket bounds (nil means
// DurationBuckets), and series cap.
func (r *Registry) LabeledHistogram(family string, labels []string, buckets []float64, maxSeries int) *LabeledHistogram {
	r.mu.RLock()
	lh, ok := r.labeledHistograms[family]
	r.mu.RUnlock()
	if ok {
		checkSameLabels(family, lh.f.labels, labels)
		return lh
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if lh, ok := r.labeledHistograms[family]; ok {
		checkSameLabels(family, lh.f.labels, labels)
		return lh
	}
	r.checkFree(family, "labeled histogram")
	if buckets == nil {
		buckets = DurationBuckets
	}
	lh = &LabeledHistogram{f: newLabeledFamily(family, labels, maxSeries), reg: r, buckets: sortDedupBounds(buckets)}
	r.labeledHistograms[family] = lh
	return lh
}

func checkSameLabels(family string, have, want []string) {
	if want == nil {
		return
	}
	if len(have) != len(want) {
		panic("obsv: labeled family " + family + " re-registered with different labels")
	}
	for i := range have {
		if have[i] != want[i] {
			panic("obsv: labeled family " + family + " re-registered with different labels")
		}
	}
}
