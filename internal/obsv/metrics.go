package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Metric names used across the pipeline — a stable public contract,
// mirrored in the Stats view of internal/core and documented in
// README.md's Observability section. The *_ns metrics count wall time in
// nanoseconds (integer counters diff exactly across snapshots); the
// *_seconds metrics are histograms for long-lived registries.
const (
	MetricWitnessNS       = "aggcavsat_witness_ns_total"
	MetricConstraintNS    = "aggcavsat_constraint_ns"
	MetricEncodeNS        = "aggcavsat_encode_ns_total"
	MetricSolveNS         = "aggcavsat_solve_ns_total"
	MetricSATCalls        = "aggcavsat_sat_calls_total"
	MetricMaxSATRuns      = "aggcavsat_maxsat_runs_total"
	MetricCNFVars         = "aggcavsat_cnf_vars_total"
	MetricCNFClauses      = "aggcavsat_cnf_clauses_total"
	MetricCNFVarsMax      = "aggcavsat_cnf_vars_max"
	MetricCNFClausesMax   = "aggcavsat_cnf_clauses_max"
	MetricConsistentSkips = "aggcavsat_consistent_part_skips_total"
	MetricWitnesses       = "aggcavsat_witnesses_total"
	MetricGroups          = "aggcavsat_groups_total"

	MetricPhaseSecondsPrefix = "aggcavsat_phase_seconds_" // + witness|constraint|encode|solve|rewrite

	// Query-level observability (PR 6). The cache counters record, per
	// call, how often a solve unit was served from the per-component
	// hard-clause memo (Engine.bases); the route/mode gauges describe
	// which code path answered the call (values documented at the
	// recording sites in internal/core); the latency summary surfaces
	// p50/p90/p99/max over whole engine calls.
	MetricBaseHits        = "aggcavsat_base_cache_hits_total"
	MetricBaseMisses      = "aggcavsat_base_cache_misses_total"
	MetricConsCacheHit    = "aggcavsat_constraint_cache_hit"    // gauge 0/1
	MetricVioFastRels     = "aggcavsat_violation_fastpath_rels" // gauge: relations on the key fast path
	MetricVioGenericDCs   = "aggcavsat_violation_generic_dcs"   // gauge: DCs on the generic path
	MetricFrontendMode    = "aggcavsat_frontend_compiled"       // gauge 0/1
	MetricIncrementalMode = "aggcavsat_solver_incremental"      // gauge 0/1
	MetricQuerySeconds    = "aggcavsat_query_seconds"           // summary: whole engine calls
	MetricJournalWritten  = "aggcavsat_journal_written_total"   // journal lines persisted
	MetricJournalDropped  = "aggcavsat_journal_dropped_total"   // journal lines shed by the bounded writer

	// Planner observability (PR 8). The route counters are one labelled
	// family — a call increments exactly one of them after its route
	// settles (including a run-time fallback), so their sum equals the
	// range-query calls served. MetricRewriteNS accumulates wall time in
	// the SAT-free rewriting executor, the rewrite-route sibling of the
	// witness/encode/solve phase counters.
	MetricRouteRewrite = `aggcavsat_planner_route_total{route="rewrite"}`
	MetricRouteSAT     = `aggcavsat_planner_route_total{route="sat"}`
	MetricRewriteNS    = "aggcavsat_rewrite_ns_total"

	// Request-correlation families (PR 10): labeled by tenant (the
	// serving instance, "none" outside cavsatd), route (the executor that
	// answered), and outcome ("ok" or the anomaly class). The engine
	// observes them per call into the session registry.
	MetricEngineCalls       = "aggcavsat_calls_total"
	MetricEngineCallSeconds = "aggcavsat_call_seconds"
)

// RequestLabels is the shared label schema of the request-correlation
// families: tenant, route, outcome — in this declared order.
var RequestLabels = []string{"tenant", "route", "outcome"}

// DurationBuckets are the default histogram bucket upper bounds for
// phase durations, in seconds (1ms … ~2min, quadrupling).
var DurationBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536, 131.072}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (lock-free running max).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus cumulative
// style: bucket i counts observations ≤ Buckets[i], plus an implicit
// +Inf bucket. All operations are lock-free.
type Histogram struct {
	buckets []float64 // sorted upper bounds
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	bs := sortDedupBounds(buckets)
	return &Histogram{buckets: bs, counts: make([]atomic.Int64, len(bs))}
}

// sortDedupBounds copies, sorts, and deduplicates bucket upper bounds.
// Duplicate bounds (e.g. an SLO latency target that coincides with a
// default bucket) would otherwise emit two _bucket lines with the same
// le label, which Prometheus rejects as a duplicate series.
func sortDedupBounds(buckets []float64) []float64 {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.buckets, v)
	if idx < len(h.buckets) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets []float64 // upper bounds, ascending
	Counts  []int64   // non-cumulative per-bucket counts; len == len(Buckets)
	Inf     int64     // observations above the last bucket
	Count   int64
	Sum     float64
}

// Registry names and owns metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use; Counter, Gauge
// and Histogram are get-or-create and panic when one name is reused
// across metric kinds (a programming error).
type Registry struct {
	mu                sync.RWMutex
	counters          map[string]*Counter
	gauges            map[string]*Gauge
	histograms        map[string]*Histogram
	summaries         map[string]*Summary
	labeledCounters   map[string]*LabeledCounter
	labeledHistograms map[string]*LabeledHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:          map[string]*Counter{},
		gauges:            map[string]*Gauge{},
		histograms:        map[string]*Histogram{},
		summaries:         map[string]*Summary{},
		labeledCounters:   map[string]*LabeledCounter{},
		labeledHistograms: map[string]*LabeledHistogram{},
	}
}

func (r *Registry) checkFree(name, kind string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.histograms[name]
	_, s := r.summaries[name]
	// The bare family name of a labeled family is reserved too: a plain
	// metric `fam` alongside series `fam{...}` would split the family's
	// TYPE header in the exposition. A `fam{...}` series name of the
	// matching kind is allowed — that is how the family's own series are
	// stored.
	fam := metricFamily(name)
	_, lc := r.labeledCounters[fam]
	_, lh := r.labeledHistograms[fam]
	if fam != name { // series name, not a bare family name
		if kind == "counter" {
			lc = false
		}
		if kind == "histogram" {
			lh = false
		}
	}
	if c || g || h || s || lc || lh {
		panic("obsv: metric " + name + " already registered with a different kind than " + kind)
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls may pass nil buckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	if buckets == nil {
		buckets = DurationBuckets
	}
	h = newHistogram(buckets)
	r.histograms[name] = h
	return h
}

// Summary returns the named latency summary, creating it with the given
// exact-reservoir size and interpolation buckets on first use (later
// calls may pass zero values).
func (r *Registry) Summary(name string, maxExact int, buckets []float64) *Summary {
	r.mu.RLock()
	s, ok := r.summaries[name]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.summaries[name]; ok {
		return s
	}
	r.checkFree(name, "summary")
	s = NewSummary(maxExact, buckets)
	r.summaries[name] = s
	return s
}

// Snapshot is a consistent-enough point-in-time copy of every metric
// (individual values are read atomically; the set is not globally
// synchronized, which is the standard scrape semantics).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	Summaries  map[string]SummarySnapshot `json:",omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	if len(r.summaries) > 0 {
		s.Summaries = make(map[string]SummarySnapshot, len(r.summaries))
		for name, sm := range r.summaries {
			s.Summaries[name] = sm.Snapshot()
		}
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Buckets: append([]float64(nil), h.buckets...),
			Counts:  make([]int64, len(h.buckets)),
			Inf:     h.inf.Load(),
			Count:   h.count.Load(),
			Sum:     math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}
