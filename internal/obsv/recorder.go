package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightEvents is the ring capacity of a flight recorder created
// with capacity <= 0.
const DefaultFlightEvents = 256

// Event is one entry in a flight recorder: a timestamped, structured
// observation from inside a running solve (a phase ending, a solver
// progress tick, a bound update, the size of a constructed CNF).
type Event struct {
	Time time.Time
	// Kind groups events for filtering: "phase", "progress", "bound",
	// "cnf", "note".
	Kind string
	// Name refines the kind: the phase name, the MaxSAT algorithm, the
	// span-like label of the operation.
	Name  string
	Attrs []Attr
}

// FlightRecorder keeps a bounded ring of the most recent events of one
// solve, so that when the solve ends in an anomaly (timeout, exhausted
// budget, error, or a slow-query threshold) the last moments before
// death can be dumped without having recorded the full history. All
// methods are safe for concurrent use and nil-receiver-safe, so
// instrumentation points record unconditionally.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // ring write cursor
	total int64 // events ever recorded
}

// NewFlightRecorder creates a recorder retaining the last capacity
// events (DefaultFlightEvents when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]Event, 0, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
// Safe on a nil receiver (a no-op), so callers never test for enablement.
func (r *FlightRecorder) Record(kind, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	ev := Event{Time: time.Now(), Kind: kind, Name: name, Attrs: attrs}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events in chronological order.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever recorded (retained + evicted).
func (r *FlightRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

type flightCtxKey struct{}

// WithFlightRecorder installs the recorder in the context so solver
// internals (maxsat progress, core phases) can feed it. A nil recorder
// returns the context unchanged.
func WithFlightRecorder(ctx context.Context, r *FlightRecorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, flightCtxKey{}, r)
}

// FlightRecorderFrom returns the recorder installed in the context, or
// nil.
func FlightRecorderFrom(ctx context.Context) *FlightRecorder {
	r, _ := ctx.Value(flightCtxKey{}).(*FlightRecorder)
	return r
}

// BundleEvent is one flight-recorder event in the dump bundle, with the
// timestamp rebased to microseconds since the solve started and the
// attributes flattened to a JSON object.
type BundleEvent struct {
	TimeUS float64        `json:"t_us"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Bundle is the self-contained JSON dump of one anomalous solve: why it
// was dumped, what the solver was doing (the flight-recorder ring), the
// call's full metric snapshot, and the resource deltas. It is the
// post-mortem counterpart of the live /debug/trace endpoint: everything
// needed to diagnose the anomaly without rerunning the query.
type Bundle struct {
	Version int `json:"version"`
	// Reason is "timeout", "budget", "error", or "slow".
	Reason string `json:"reason"`
	// Query labels the solve (operation + aggregate, as reported by the
	// engine).
	Query string `json:"query,omitempty"`
	// TraceID is the W3C trace id of the request that died (32 lowercase
	// hex digits), when the solve's context carried one — the same id the
	// journal line, explain report, and cavsatd response carry.
	TraceID string `json:"trace_id,omitempty"`
	// Err is the error text for reasons other than "slow".
	Err        string    `json:"error,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	// Events is the flight-recorder ring in chronological order;
	// DroppedEvents counts earlier events evicted from the ring.
	Events        []BundleEvent `json:"events"`
	DroppedEvents int64         `json:"dropped_events"`
	// Metrics is the call-local metric snapshot (counters/gauges/
	// histograms of the solve that died).
	Metrics Snapshot `json:"metrics"`
	// Resources is the whole-call resource delta.
	Resources ResourceDelta `json:"resources"`
	// Journal is the path of the query journal that carries this solve's
	// wide-event line, when journaling was enabled — the reverse half of
	// the journal↔bundle linkage (the journal line records File).
	Journal string `json:"journal,omitempty"`
	// File is the path this bundle was dumped to; DumpDir fills it in
	// before writing so the journal line (and the hook's caller) can
	// reference the bundle on disk.
	File string `json:"file,omitempty"`
}

// BundleVersion is the schema version stamped on produced bundles.
const BundleVersion = 1

// NewBundle assembles a dump bundle from the recorder's current ring.
// The recorder may be nil (the bundle then carries no events).
func NewBundle(reason, query string, err error, start time.Time, dur time.Duration, rec *FlightRecorder, metrics Snapshot, res ResourceDelta) *Bundle {
	b := &Bundle{
		Version:    BundleVersion,
		Reason:     reason,
		Query:      query,
		Start:      start,
		DurationMS: float64(dur.Microseconds()) / 1000,
		Metrics:    metrics,
		Resources:  res,
	}
	if err != nil {
		b.Err = err.Error()
	}
	events := rec.Events()
	b.Events = make([]BundleEvent, len(events))
	for i, ev := range events {
		be := BundleEvent{
			TimeUS: float64(ev.Time.Sub(start)) / float64(time.Microsecond),
			Kind:   ev.Kind,
			Name:   ev.Name,
		}
		if len(ev.Attrs) > 0 {
			be.Attrs = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				if a.IsInt {
					be.Attrs[a.Key] = a.Int
				} else {
					be.Attrs[a.Key] = a.Str
				}
			}
		}
		b.Events[i] = be
	}
	if d := rec.Total() - int64(len(events)); d > 0 {
		b.DroppedEvents = d
	}
	return b
}

// Write renders the bundle as indented JSON.
func (b *Bundle) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBundle decodes a bundle written by Write (the round-trip contract
// asserted by the decoder tests).
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("obsv: decoding flight bundle: %w", err)
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("obsv: flight bundle version %d, want %d", b.Version, BundleVersion)
	}
	return &b, nil
}

// dumpSeq disambiguates bundle filenames produced within one timestamp
// granule.
var dumpSeq atomic.Int64

// DumpDir returns an anomaly sink that writes each bundle to its own
// flight-<stamp>-<seq>-<reason>.json file under dir (created on first
// dump). Write errors are reported on stderr rather than returned: the
// dump path runs after the solve has already failed, and must never mask
// the original error.
func DumpDir(dir string) func(*Bundle) {
	return func(b *Bundle) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "obsv: flight dump:", err)
			return
		}
		name := fmt.Sprintf("flight-%s-%03d-%s.json",
			time.Now().UTC().Format("20060102T150405"), dumpSeq.Add(1), b.Reason)
		path := filepath.Join(dir, name)
		b.File = path // journal lines reference the bundle by this path
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsv: flight dump:", err)
			return
		}
		err = b.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsv: flight dump:", err)
		}
	}
}
