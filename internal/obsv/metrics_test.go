package obsv

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Error("get-or-create returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	g.SetMax(3) // below current: no-op
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Errorf("gauge after SetMax = %d", g.Value())
	}

	h := r.Histogram("h_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	snap := r.Snapshot()
	hs := snap.Histograms["h_seconds"]
	if hs.Count != 3 || hs.Inf != 1 || hs.Counts[0] != 1 || hs.Counts[1] != 1 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if math.Abs(hs.Sum-55.5) > 1e-9 {
		t.Errorf("sum = %v", hs.Sum)
	}
	if snap.Counters["c_total"] != 5 || snap.Gauges["g"] != 11 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

// TestConcurrentMetrics hammers one registry from many goroutines; run
// under -race it gates the lock-free implementations (the Makefile's
// race target).
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits_total").Inc()
				r.Gauge("depth").Set(int64(i))
				r.Gauge("max_depth").SetMax(int64(w*perWorker + i))
				r.Histogram("lat_seconds", nil).Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["hits_total"]; got != workers*perWorker {
		t.Errorf("hits_total = %d, want %d", got, workers*perWorker)
	}
	if got := snap.Gauges["max_depth"]; got != workers*perWorker-1 {
		t.Errorf("max_depth = %d, want %d", got, workers*perWorker-1)
	}
	h := snap.Histograms["lat_seconds"]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d", h.Count)
	}
	var bucketTotal int64
	for _, c := range h.Counts {
		bucketTotal += c
	}
	if bucketTotal+h.Inf != h.Count {
		t.Errorf("bucket totals %d+%d != count %d", bucketTotal, h.Inf, h.Count)
	}
}

// TestPrometheusExposition checks the text format line by line: every
// line is either a "# TYPE name kind" comment or "name[{labels}] value"
// with a parseable value, histograms have monotone cumulative buckets
// ending in +Inf, and output is deterministic.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricSATCalls).Add(12)
	r.Gauge(MetricCNFVarsMax).SetMax(300)
	h := r.Histogram(MetricPhaseSecondsPrefix+"solve", nil)
	h.Observe(0.002)
	h.Observe(3.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var prevCum int64
	var sawInf bool
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("bad TYPE line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("bad kind in %q", line)
			}
			prevCum, sawInf = 0, false
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		if strings.Contains(name, "_bucket{le=") {
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Errorf("bucket count not integer in %q", line)
			}
			if cum < prevCum {
				t.Errorf("cumulative bucket decreased at %q", line)
			}
			prevCum = cum
			if strings.Contains(name, `le="+Inf"`) {
				sawInf = true
			}
		}
	}
	if !strings.Contains(out, fmt.Sprintf("%s 12\n", MetricSATCalls)) {
		t.Errorf("missing counter sample:\n%s", out)
	}
	if !sawInf {
		t.Errorf("histogram without +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, MetricPhaseSecondsPrefix+"solve_count 2") {
		t.Errorf("missing histogram count:\n%s", out)
	}

	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

// TestHistogramDuplicateBounds pins the dedup of bucket upper bounds:
// cavsatd appends the SLO latency target to DurationBuckets, and when it
// coincides with an existing bound the exposition must still emit one
// _bucket line per le value (Prometheus rejects duplicate series).
func TestHistogramDuplicateBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dup_seconds", []float64{1, 0.25, 1, 4})
	if got := len(h.buckets); got != 3 {
		t.Fatalf("deduped bucket count = %d, want 3", got)
	}
	h.Observe(0.9)
	h.Observe(2)

	lh := r.LabeledHistogram("dup_labeled_seconds", []string{"route"}, []float64{1, 0.25, 1, 4}, 8)
	if got := len(lh.Buckets()); got != 3 {
		t.Fatalf("deduped labeled bucket count = %d, want 3", got)
	}
	lh.With("sat").Observe(0.9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if sp := strings.LastIndexByte(line, ' '); sp > 0 && strings.Contains(line, "_bucket{") {
			seen[line[:sp]]++
		}
	}
	for name, n := range seen {
		if n > 1 {
			t.Errorf("duplicate bucket series %q emitted %d times:\n%s", name, n, buf.String())
		}
	}
	if seen[`dup_seconds_bucket{le="1"}`] != 1 {
		t.Errorf("missing dup_seconds le=1 bucket:\n%s", buf.String())
	}
	if seen[`dup_labeled_seconds_bucket{route="sat",le="1"}`] != 1 {
		t.Errorf("missing labeled le=1 bucket:\n%s", buf.String())
	}
}
