// Package conquer implements a ConQuer-style baseline: range consistent
// answers of C_aggforest aggregation queries computed by pure relational
// evaluation, with no SAT solving.
//
// ConQuer (Fuxman, Fazli, Miller; SIGMOD'05) rewrites such queries into
// SQL evaluated directly on the inconsistent database. On our in-memory
// engine the equivalent computation is a dynamic program over key-equal
// groups arranged in the query's join tree:
//
//   - the query must be a single self-join-free conjunctive query whose
//     join graph is a tree rooted at the aggregation relation, every
//     child atom joined from its parent on the child's *full key* (the
//     defining property of C_forest); comparisons must be local to one
//     atom, and SUM values must be non-negative;
//   - a root fact yields at most one result row (full-key joins are
//     functional), so per key-equal group of the root the adversary
//     (glb) or the advocate (lub) picks the best alternative, where an
//     alternative's contribution depends on whether its join chain is
//     *certain* (survives every repair) or merely *possible*;
//   - a group key is a consistent answer iff some root key-equal group
//     contributes a row to it under every repair.
//
// Queries outside the class are rejected with ErrNotInClass — exactly
// how the paper treats Q5 ("not in C_aggforest and thus ConQuer cannot
// compute its range consistent answers").
package conquer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// ErrNotInClass is returned for queries the rewriting cannot handle.
var ErrNotInClass = errors.New("conquer: query not in C_aggforest")

// GroupRange is one range consistent answer.
type GroupRange struct {
	Key db.Tuple
	GLB db.Value
	LUB db.Value
	// EmptyPossible is set for scalar MIN/MAX when some repair has an
	// empty result; the corresponding endpoint is NULL.
	EmptyPossible bool
}

// Baseline evaluates C_aggforest queries over one instance.
type Baseline struct {
	in *db.Instance
}

// New creates a baseline evaluator.
func New(in *db.Instance) *Baseline { return &Baseline{in: in} }

// RangeAnswers computes the range consistent answers of q, or
// ErrNotInClass when the query falls outside the supported class.
func (b *Baseline) RangeAnswers(q cq.AggQuery) ([]GroupRange, error) {
	q = q.BuildHead()
	if err := q.Validate(b.in.Schema()); err != nil {
		return nil, err
	}
	plan, err := b.analyze(q)
	if err != nil {
		return nil, err
	}
	return plan.solve()
}

// varOcc is one occurrence of a variable: which atom and position.
type varOcc struct{ atom, pos int }

// rootGroup is one key-equal group of the root relation.
type rootGroup struct{ members []db.FactID }

// atomInfo is one node of the join tree.
type atomInfo struct {
	atom     cq.Atom
	rel      *db.RelationSchema
	parent   int // -1 for root
	children []int
	// joinPos maps, for non-root atoms, each key position of this atom
	// to the parent position providing the join value.
	parentJoin []joinEdge
	// conds are the conditions local to this atom.
	conds []cq.Condition
	// groupPositions lists (head index, attr position) for grouping
	// variables owned by this atom.
	groupPositions []groupPos
}

type joinEdge struct {
	childKeyPos int
	parentPos   int
}

type groupPos struct {
	headIndex int
	pos       int
}

type plan struct {
	in      *db.Instance
	q       cq.AggQuery
	atoms   []atomInfo
	root    int
	aggPos  int // attr position of the aggregation variable in the root atom; -1 for COUNT(*)
	grouped bool
}

// analyze checks class membership and builds the join tree.
func (b *Baseline) analyze(q cq.AggQuery) (*plan, error) {
	if len(q.Underlying.Disjuncts) != 1 {
		return nil, fmt.Errorf("%w: unions of conjunctive queries are not rewritable here", ErrNotInClass)
	}
	d := q.Underlying.Disjuncts[0]
	if !d.SelfJoinFree() {
		return nil, fmt.Errorf("%w: query has self-joins", ErrNotInClass)
	}
	switch q.Op {
	case cq.CountStar, cq.Count, cq.Sum, cq.Min, cq.Max:
	default:
		return nil, fmt.Errorf("%w: operator %s not supported by the rewriting", ErrNotInClass, q.Op)
	}

	// Variable occurrences.
	occs := map[string][]varOcc{}
	for ai, a := range d.Atoms {
		rs := b.in.Schema().Relation(a.Rel)
		if !rs.HasKey() {
			return nil, fmt.Errorf("%w: relation %s has no key constraint", ErrNotInClass, rs.Name)
		}
		for p, t := range a.Args {
			if !t.IsConst {
				occs[t.Var] = append(occs[t.Var], varOcc{ai, p})
			}
		}
	}
	// Conditions must be local to one atom.
	condsOf := make([][]cq.Condition, len(d.Atoms))
	for _, c := range d.Conds {
		atomsUsed := map[int]bool{}
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsConst {
				continue
			}
			for _, o := range occs[t.Var] {
				atomsUsed[o.atom] = true
			}
		}
		if len(atomsUsed) != 1 {
			return nil, fmt.Errorf("%w: condition %s spans multiple atoms", ErrNotInClass, c)
		}
		for ai := range atomsUsed {
			condsOf[ai] = append(condsOf[ai], c)
		}
	}

	// The head is positional: group variables then the aggregation
	// variable (when present).
	head := d.Head
	nGroup := len(head)
	aggVar := ""
	if q.Op.NeedsVar() {
		nGroup--
		aggVar = head[nGroup]
	}

	// Root: the atom owning the aggregation variable; for COUNT(*), try
	// every atom.
	var rootCandidates []int
	if aggVar != "" {
		aggOccs := occs[aggVar]
		seen := map[int]bool{}
		for _, o := range aggOccs {
			if !seen[o.atom] {
				seen[o.atom] = true
				rootCandidates = append(rootCandidates, o.atom)
			}
		}
	} else {
		for ai := range d.Atoms {
			rootCandidates = append(rootCandidates, ai)
		}
	}

	var firstErr error
	for _, root := range rootCandidates {
		p, err := b.buildTree(q, d, root, occs, condsOf, nGroup, aggVar)
		if err == nil {
			return p, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w: no valid root", ErrNotInClass)
	}
	return nil, firstErr
}

func (b *Baseline) buildTree(q cq.AggQuery, d cq.CQ, root int,
	occs map[string][]varOcc, condsOf [][]cq.Condition,
	nGroup int, aggVar string) (*plan, error) {

	n := len(d.Atoms)
	atoms := make([]atomInfo, n)
	for ai, a := range d.Atoms {
		atoms[ai] = atomInfo{
			atom:   a,
			rel:    b.in.Schema().Relation(a.Rel),
			parent: -1,
			conds:  condsOf[ai],
		}
	}

	// Adjacency via shared variables.
	shared := map[[2]int][]string{}
	for v, os := range occs {
		for i := 0; i < len(os); i++ {
			for j := i + 1; j < len(os); j++ {
				a, bb := os[i].atom, os[j].atom
				if a == bb {
					continue
				}
				if a > bb {
					a, bb = bb, a
				}
				key := [2]int{a, bb}
				if !containsStr(shared[key], v) {
					shared[key] = append(shared[key], v)
				}
			}
		}
	}

	// BFS from the root, requiring a tree.
	visited := make([]bool, n)
	visited[root] = true
	queue := []int{root}
	order := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for other := 0; other < n; other++ {
			if other == cur {
				continue
			}
			key := [2]int{cur, other}
			if key[0] > key[1] {
				key = [2]int{other, cur}
			}
			if len(shared[key]) == 0 {
				continue
			}
			if visited[other] {
				// Sharing with an already-visited atom other than the
				// parent breaks the tree shape.
				if atoms[cur].parent != other && atoms[other].parent != cur {
					return nil, fmt.Errorf("%w: join graph is not a tree", ErrNotInClass)
				}
				continue
			}
			visited[other] = true
			atoms[other].parent = cur
			atoms[cur].children = append(atoms[cur].children, other)
			queue = append(queue, other)
			order = append(order, other)
		}
	}
	for ai := range atoms {
		if !visited[ai] {
			return nil, fmt.Errorf("%w: query is a cartesian product", ErrNotInClass)
		}
	}

	// Validate join edges: every shared variable between child and
	// parent must sit on a key position of the child, and the shared
	// variables must cover the child's entire key.
	for ai := range atoms {
		if atoms[ai].parent < 0 {
			continue
		}
		parent := atoms[ai].parent
		key := [2]int{ai, parent}
		if key[0] > key[1] {
			key = [2]int{parent, ai}
		}
		vars := shared[key]
		keyCovered := map[int]bool{}
		var edges []joinEdge
		for _, v := range vars {
			var childPos, parentPos []int
			for _, o := range occs[v] {
				switch o.atom {
				case ai:
					childPos = append(childPos, o.pos)
				case parent:
					parentPos = append(parentPos, o.pos)
				}
			}
			for _, cp := range childPos {
				if !isKeyPos(atoms[ai].rel, cp) {
					return nil, fmt.Errorf("%w: join on non-key attribute %s of %s",
						ErrNotInClass, atoms[ai].rel.Attrs[cp].Name, atoms[ai].rel.Name)
				}
				keyCovered[cp] = true
				edges = append(edges, joinEdge{childKeyPos: cp, parentPos: parentPos[0]})
			}
		}
		// Key positions bound by constants also count as covered.
		for _, kp := range atoms[ai].rel.Key {
			if atoms[ai].atom.Args[kp].IsConst {
				keyCovered[kp] = true
			}
		}
		for _, kp := range atoms[ai].rel.Key {
			if !keyCovered[kp] {
				return nil, fmt.Errorf("%w: join does not cover the key of %s",
					ErrNotInClass, atoms[ai].rel.Name)
			}
		}
		atoms[ai].parentJoin = edges
	}

	// Grouping variables: each is owned by one atom. Join variables
	// occur in several atoms; prefer an occurrence on the root so the
	// per-group evaluation can reuse the group-independent child states.
	for hi := 0; hi < nGroup; hi++ {
		v := d.Head[hi]
		os := occs[v]
		if len(os) == 0 {
			return nil, fmt.Errorf("conquer: unbound head variable %s", v)
		}
		owner := os[0]
		for _, o := range os {
			if o.atom == root {
				owner = o
				break
			}
		}
		atoms[owner.atom].groupPositions = append(atoms[owner.atom].groupPositions,
			groupPos{headIndex: hi, pos: owner.pos})
	}

	aggPos := -1
	if aggVar != "" {
		for _, o := range occs[aggVar] {
			if o.atom == root {
				aggPos = o.pos
				break
			}
		}
		if aggPos < 0 {
			return nil, fmt.Errorf("%w: aggregation attribute not on the root relation", ErrNotInClass)
		}
	}

	return &plan{
		in:      b.in,
		q:       q,
		atoms:   atoms,
		root:    root,
		aggPos:  aggPos,
		grouped: nGroup > 0,
	}, nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func isKeyPos(rs *db.RelationSchema, pos int) bool {
	for _, k := range rs.Key {
		if k == pos {
			return true
		}
	}
	return false
}

// factState caches per-fact pass/cert/poss flags for one group filter.
type factState struct {
	pass bool
	cert bool
	poss bool
}

// solve runs the interval DP.
func (p *plan) solve() ([]GroupRange, error) {
	// Precompute per-atom structures: local pass, key-group maps, and
	// join indexes keyed by the child's key projection.
	type atomData struct {
		facts  []db.FactID
		byKey  map[string][]db.FactID // child lookup by key projection
		keyPos []int
	}
	data := make([]atomData, len(p.atoms))
	for ai := range p.atoms {
		rel := p.atoms[ai].rel
		facts := p.in.RelFacts(rel.Name)
		ad := atomData{facts: facts, keyPos: rel.Key}
		ad.byKey = make(map[string][]db.FactID)
		for _, f := range facts {
			k := p.in.Fact(f).Tuple.Key(rel.Key)
			ad.byKey[k] = append(ad.byKey[k], f)
		}
		data[ai] = ad
	}

	// localPass evaluates atom-level constants and conditions on a fact.
	localPass := func(ai int, f db.FactID) bool {
		t := p.in.Fact(f).Tuple
		atom := p.atoms[ai].atom
		binding := map[string]db.Value{}
		for pos, term := range atom.Args {
			if term.IsConst {
				if !term.Const.Equal(t[pos]) {
					return false
				}
				continue
			}
			if prev, ok := binding[term.Var]; ok {
				if !prev.Equal(t[pos]) {
					return false
				}
				continue
			}
			binding[term.Var] = t[pos]
		}
		for _, c := range p.atoms[ai].conds {
			val := func(term cq.Term) db.Value {
				if term.IsConst {
					return term.Const
				}
				return binding[term.Var]
			}
			if !c.Op.Apply(val(c.Left), val(c.Right)) {
				return false
			}
		}
		return true
	}

	// Enumerate candidate groups: distinct group keys over rows of the
	// full (inconsistent) instance.
	e := cq.NewEvaluator(p.in)
	q := p.q
	var groupKeys []db.Tuple
	if p.grouped {
		rows := e.EvalUCQ(q.Underlying)
		positions := make([]int, len(q.GroupBy))
		for i := range positions {
			positions[i] = i
		}
		seen := map[string]bool{}
		for _, r := range rows {
			k := r.Head[:len(q.GroupBy)].Key(positions)
			if !seen[k] {
				seen[k] = true
				groupKeys = append(groupKeys, r.Head[:len(q.GroupBy)].Clone())
			}
		}
		sort.Slice(groupKeys, func(i, j int) bool { return groupKeys[i].Compare(groupKeys[j]) < 0 })
	} else {
		groupKeys = []db.Tuple{{}}
	}

	// When every grouping attribute lives on the root atom, the child
	// states are group-independent: compute them once and filter only
	// the root facts per group (this is what keeps the rewriting's cost
	// one scan, not one scan per group, on high-cardinality groupings
	// like Q3's ORDER keys).
	rootOnlyGrouping := true
	for ai := range p.atoms {
		if ai != p.root && len(p.atoms[ai].groupPositions) > 0 {
			rootOnlyGrouping = false
			break
		}
	}

	// makeEval builds a memoized bottom-up state evaluator. A nil group
	// key disables group filtering (used for the shared child states).
	makeEval := func(g db.Tuple, skipRootFilter bool) func(ai int, f db.FactID) *factState {
		states := make([]map[db.FactID]*factState, len(p.atoms))
		for ai := range states {
			states[ai] = make(map[db.FactID]*factState, len(data[ai].facts))
		}
		var evalFact func(ai int, f db.FactID) *factState
		evalFact = func(ai int, f db.FactID) *factState {
			if st, ok := states[ai][f]; ok {
				return st
			}
			st := &factState{}
			states[ai][f] = st
			st.pass = localPass(ai, f)
			if st.pass && g != nil && !(skipRootFilter && ai == p.root) {
				// Group filter: owned grouping positions must match g.
				for _, gp := range p.atoms[ai].groupPositions {
					if !p.in.Fact(f).Tuple[gp.pos].Equal(g[gp.headIndex]) {
						st.pass = false
						break
					}
				}
			}
			if !st.pass {
				return st
			}
			st.cert, st.poss = true, true
			for _, ci := range p.atoms[ai].children {
				// The referenced child key-equal group.
				key := p.childKey(ci, f)
				members := data[ci].byKey[key]
				if len(members) == 0 {
					st.cert, st.poss = false, false
					return st
				}
				anyPoss, allCert := false, true
				for _, m := range members {
					ms := evalFact(ci, m)
					if ms.poss {
						anyPoss = true
					}
					if !ms.cert {
						allCert = false
					}
				}
				st.cert = st.cert && allCert
				st.poss = st.poss && anyPoss
			}
			return st
		}
		return evalFact
	}

	// Root key-equal groups, shared across grouping keys.
	rootData := data[p.root]
	var allRootGroups []rootGroup
	seenKey := map[string]bool{}
	for _, f := range rootData.facts {
		k := p.in.Fact(f).Tuple.Key(rootData.keyPos)
		if seenKey[k] {
			continue
		}
		seenKey[k] = true
		allRootGroups = append(allRootGroups, rootGroup{members: rootData.byKey[k]})
	}

	var sharedEval func(ai int, f db.FactID) *factState
	if rootOnlyGrouping {
		sharedEval = makeEval(nil, false)
	}

	var out []GroupRange
	for _, g := range groupKeys {
		var evalFact func(ai int, f db.FactID) *factState
		if rootOnlyGrouping {
			// Shared child states; per-group filter applied to root
			// facts on top of the shared pass/cert/poss.
			g := g
			evalFact = func(ai int, f db.FactID) *factState {
				st := sharedEval(ai, f)
				if ai != p.root || !st.pass || len(g) == 0 {
					return st
				}
				for _, gp := range p.atoms[p.root].groupPositions {
					if !p.in.Fact(f).Tuple[gp.pos].Equal(g[gp.headIndex]) {
						return &factState{}
					}
				}
				return st
			}
		} else {
			evalFact = makeEval(g, false)
		}

		res, err := p.aggregate(g, allRootGroups, evalFact)
		if err != nil {
			return nil, err
		}
		if res != nil {
			out = append(out, *res)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out, nil
}

// childKey builds the lookup key of the child group referenced by the
// parent fact: join positions take the parent's values, constant key
// positions take the constant.
func (p *plan) childKey(ci int, parentFact db.FactID) string {
	rel := p.atoms[ci].rel
	pt := p.in.Fact(parentFact).Tuple
	vals := make(db.Tuple, len(rel.Key))
	positions := make([]int, len(rel.Key))
	for i, kp := range rel.Key {
		positions[i] = i
		if p.atoms[ci].atom.Args[kp].IsConst {
			vals[i] = p.atoms[ci].atom.Args[kp].Const
			continue
		}
		for _, edge := range p.atoms[ci].parentJoin {
			if edge.childKeyPos == kp {
				vals[i] = pt[edge.parentPos]
				break
			}
		}
	}
	// Reuse Tuple.Key on a synthetic tuple ordered like rel.Key — the
	// same encoding byKey uses (Key(rel.Key) projects in key order).
	return vals.Key(positions)
}

// aggregate combines per-root-group optima into the group's interval.
// Returns nil when the group is not a consistent answer.
func (p *plan) aggregate(g db.Tuple, rootGroups []rootGroup,
	evalFact func(int, db.FactID) *factState) (*GroupRange, error) {

	op := p.q.Op
	value := func(f db.FactID) (int64, bool, error) {
		switch op {
		case cq.CountStar:
			return 1, true, nil
		case cq.Count:
			v := p.in.Fact(f).Tuple[p.aggPos]
			if v.IsNull() {
				return 0, true, nil
			}
			return 1, true, nil
		case cq.Sum:
			v := p.in.Fact(f).Tuple[p.aggPos]
			if v.IsNull() {
				return 0, true, nil
			}
			if v.Kind() != db.KindInt {
				return 0, false, fmt.Errorf("%w: SUM over non-integer values", ErrNotInClass)
			}
			n := v.AsInt()
			if n < 0 {
				return 0, false, fmt.Errorf("%w: SUM over negative values is not rewritable here", ErrNotInClass)
			}
			return n, true, nil
		default:
			return 0, false, nil
		}
	}

	// Consistency: some root group contributes a row to g in every
	// repair.
	consistent := false
	for _, rg := range rootGroups {
		all := true
		for _, f := range rg.members {
			if !evalFact(p.root, f).cert {
				all = false
				break
			}
		}
		if all && len(rg.members) > 0 {
			consistent = true
			break
		}
	}
	if p.grouped && !consistent {
		return nil, nil
	}

	switch op {
	case cq.CountStar, cq.Count, cq.Sum:
		var glb, lub int64
		for _, rg := range rootGroups {
			minC := int64(math.MaxInt64)
			maxC := int64(0)
			for _, f := range rg.members {
				st := evalFact(p.root, f)
				v, ok, err := value(f)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("%w: unsupported value", ErrNotInClass)
				}
				var cMin, cMax int64
				switch {
				case st.cert:
					cMin, cMax = v, v
				case st.poss:
					cMin, cMax = 0, v
				default:
					cMin, cMax = 0, 0
				}
				if cMin < minC {
					minC = cMin
				}
				if cMax > maxC {
					maxC = cMax
				}
			}
			glb += minC
			lub += maxC
		}
		return &GroupRange{Key: g, GLB: db.Int(glb), LUB: db.Int(lub)}, nil
	case cq.Min, cq.Max:
		return p.aggregateMinMax(g, rootGroups, evalFact)
	default:
		return nil, fmt.Errorf("%w: operator %s", ErrNotInClass, op)
	}
}

func (p *plan) aggregateMinMax(g db.Tuple, rootGroups []rootGroup,
	evalFact func(int, db.FactID) *factState) (*GroupRange, error) {

	op := p.q.Op
	// emptyPossible: every root group has an escape (an alternative
	// whose row can be avoided).
	emptyPossible := true
	for _, rg := range rootGroups {
		escapable := false
		for _, f := range rg.members {
			if !evalFact(p.root, f).cert {
				escapable = true
				break
			}
		}
		if !escapable && len(rg.members) > 0 {
			emptyPossible = false
			break
		}
	}

	var bestPoss db.Value // extreme attainable value (lub for MAX, glb for MIN)
	var forced db.Value   // the guaranteed endpoint
	for _, rg := range rootGroups {
		// Per group: the guaranteed value when every member is certain.
		var groupWorst db.Value // worst forced value among alternatives
		allCert := len(rg.members) > 0
		for _, f := range rg.members {
			st := evalFact(p.root, f)
			v := p.in.Fact(f).Tuple[p.aggPos]
			if v.IsNull() {
				allCert = false
				continue
			}
			if st.poss {
				if bestPoss.IsNull() || better(op, v, bestPoss) {
					bestPoss = v
				}
			}
			if !st.cert {
				allCert = false
				continue
			}
			if groupWorst.IsNull() || better(op, groupWorst, v) {
				groupWorst = v
			}
		}
		if allCert && !groupWorst.IsNull() {
			// Every repair contains a row from this group with value at
			// least (MAX) / at most (MIN) groupWorst.
			if forced.IsNull() || better(op, groupWorst, forced) {
				forced = groupWorst
			}
		}
	}

	res := &GroupRange{Key: g, EmptyPossible: emptyPossible}
	if op == cq.Max {
		res.LUB = bestPoss
		if !emptyPossible {
			res.GLB = forced
		}
	} else {
		res.GLB = bestPoss
		if !emptyPossible {
			res.LUB = forced
		}
	}
	return res, nil
}

// better reports whether a is more extreme than b for the operator
// (greater for MAX, smaller for MIN).
func better(op cq.AggOp, a, b db.Value) bool {
	if op == cq.Max {
		return a.Compare(b) > 0
	}
	return a.Compare(b) < 0
}

// Describe renders the join tree for diagnostics.
func (p *plan) Describe() string {
	var b strings.Builder
	for ai, a := range p.atoms {
		fmt.Fprintf(&b, "%d: %s parent=%d\n", ai, a.rel.Name, a.parent)
	}
	return b.String()
}
