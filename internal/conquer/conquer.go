// Package conquer implements a ConQuer-style rewriting: range consistent
// answers of C_aggforest aggregation queries computed by pure relational
// evaluation, with no SAT solving.
//
// ConQuer (Fuxman, Fazli, Miller; SIGMOD'05) rewrites such queries into
// SQL evaluated directly on the inconsistent database. On our in-memory
// engine the equivalent computation is a dynamic program over key-equal
// groups arranged in the query's join tree:
//
//   - the query must be a single self-join-free conjunctive query whose
//     join graph is a tree rooted at the aggregation relation, every
//     child atom joined from its parent on the child's *full key* (the
//     defining property of C_forest); comparisons must be local to one
//     atom, and SUM values must be non-negative;
//   - a root fact yields at most one result row (full-key joins are
//     functional), so per key-equal group of the root the adversary
//     (glb) or the advocate (lub) picks the best alternative, where an
//     alternative's contribution depends on whether its join chain is
//     *certain* (survives every repair) or merely *possible*;
//   - a group key is a consistent answer iff some root key-equal group
//     contributes a row to it under every repair.
//
// Queries outside the class are rejected with ErrNotInClass — exactly
// how the paper treats Q5 ("not in C_aggforest and thus ConQuer cannot
// compute its range consistent answers").
//
// The package splits classification from execution so internal/planner
// can use it as the engine's fast path: Analyze compiles a query against
// a schema into an instance-independent Plan (cacheable per query
// shape), and Plan.Execute runs it over an instance with memoized
// Indexes, a bounded worker pool over grouping keys, and cooperative
// context cancellation. Baseline wraps both for the sequential
// single-shot use the tests and benchmarks rely on.
package conquer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// ErrNotInClass is returned for queries the rewriting cannot handle.
var ErrNotInClass = errors.New("conquer: query not in C_aggforest")

// GroupRange is one range consistent answer.
type GroupRange struct {
	Key db.Tuple
	GLB db.Value
	LUB db.Value
	// EmptyPossible is set for scalar MIN/MAX when some repair has an
	// empty result; the corresponding endpoint is NULL.
	EmptyPossible bool
	// FromConsistentPart reports that every witness of this answer is
	// made of safe facts (facts in no key violation) — the same flag the
	// SAT engine's consistent-part folding sets, so the two routes stay
	// digest-identical. Only COUNT(*)/COUNT/SUM answers carry it; the
	// solver's MIN/MAX path never sets the flag, so neither does the
	// rewriting.
	FromConsistentPart bool
}

// Baseline evaluates C_aggforest queries over one instance.
type Baseline struct {
	in *db.Instance
	ix *Indexes
}

// New creates a baseline evaluator. The per-relation lookup indexes are
// memoized on the Baseline, so repeated RangeAnswers calls over the same
// instance skip re-indexing.
func New(in *db.Instance) *Baseline { return &Baseline{in: in, ix: NewIndexes(in)} }

// RangeAnswers computes the range consistent answers of q, or
// ErrNotInClass when the query falls outside the supported class.
func (b *Baseline) RangeAnswers(q cq.AggQuery) ([]GroupRange, error) {
	q = q.BuildHead()
	if err := q.Validate(b.in.Schema()); err != nil {
		return nil, err
	}
	plan, err := Analyze(b.in.Schema(), q)
	if err != nil {
		return nil, err
	}
	return plan.Execute(context.Background(), b.in, b.ix, 1)
}

// varOcc is one occurrence of a variable: which atom and position.
type varOcc struct{ atom, pos int }

// rootGroup is one key-equal group of the root relation.
type rootGroup struct{ members []db.FactID }

// atomInfo is one node of the join tree.
type atomInfo struct {
	atom     cq.Atom
	rel      *db.RelationSchema
	parent   int // -1 for root
	children []int
	// joinPos maps, for non-root atoms, each key position of this atom
	// to the parent position providing the join value.
	parentJoin []joinEdge
	// conds are the conditions local to this atom.
	conds []cq.Condition
	// groupPositions lists (head index, attr position) for grouping
	// variables owned by this atom.
	groupPositions []groupPos
	// local is the compiled form of the atom's constants, duplicate
	// variables, and conditions.
	local localCheck
	// keyFromParent maps, for non-root atoms, each key index to the
	// parent tuple position providing its value (-1 when the key
	// position is bound by a constant, stored in keyConsts).
	keyFromParent []int
	keyConsts     db.Tuple
	// subtreeGroupIdx lists, sorted, the head indices of grouping
	// variables owned by this atom's subtree.
	subtreeGroupIdx []int
}

type joinEdge struct {
	childKeyPos int
	parentPos   int
}

type groupPos struct {
	headIndex int
	pos       int
}

// localCheck is the compiled, allocation-free form of an atom's local
// filters — constant bindings, repeated-variable equalities, and
// comparison conditions — all resolved to tuple positions at Analyze
// time so Execute never rebuilds a variable binding map per fact.
type localCheck struct {
	constPos []int
	constVal []db.Value
	dupPairs [][2]int
	conds    []condCheck
}

// condCheck is one compiled comparison: each side is either a constant
// (pos < 0) or a tuple position of the owning atom.
type condCheck struct {
	op       cq.CmpOp
	leftPos  int
	leftVal  db.Value
	rightPos int
	rightVal db.Value
}

// Plan is a compiled rewriting for one C_aggforest query. It is built
// from the schema alone — no instance data — so callers may cache one
// Plan per query shape and Execute it against successive versions of an
// instance.
type Plan struct {
	q       cq.AggQuery
	atoms   []atomInfo
	root    int
	aggPos  int // attr position of the aggregation variable in the root atom; -1 for COUNT(*)
	grouped bool
}

// Grouped reports whether the plan's query has grouping attributes.
func (p *Plan) Grouped() bool { return p.grouped }

// Analyze checks class membership against the schema and compiles the
// join tree. The query must already have its head built (cq.AggQuery
// BuildHead) and validate against the schema; Baseline and the planner
// both guarantee that before calling.
func Analyze(schema *db.Schema, q cq.AggQuery) (*Plan, error) {
	if len(q.Underlying.Disjuncts) != 1 {
		return nil, fmt.Errorf("%w: unions of conjunctive queries are not rewritable here", ErrNotInClass)
	}
	d := q.Underlying.Disjuncts[0]
	if !d.SelfJoinFree() {
		return nil, fmt.Errorf("%w: query has self-joins", ErrNotInClass)
	}
	switch q.Op {
	case cq.CountStar, cq.Count, cq.Sum, cq.Min, cq.Max:
	default:
		return nil, fmt.Errorf("%w: operator %s not supported by the rewriting", ErrNotInClass, q.Op)
	}

	// Variable occurrences.
	occs := map[string][]varOcc{}
	for ai, a := range d.Atoms {
		rs := schema.Relation(a.Rel)
		if !rs.HasKey() {
			return nil, fmt.Errorf("%w: relation %s has no key constraint", ErrNotInClass, rs.Name)
		}
		for p, t := range a.Args {
			if !t.IsConst {
				occs[t.Var] = append(occs[t.Var], varOcc{ai, p})
			}
		}
	}
	// Conditions must be local to one atom.
	condsOf := make([][]cq.Condition, len(d.Atoms))
	for _, c := range d.Conds {
		atomsUsed := map[int]bool{}
		for _, t := range []cq.Term{c.Left, c.Right} {
			if t.IsConst {
				continue
			}
			for _, o := range occs[t.Var] {
				atomsUsed[o.atom] = true
			}
		}
		if len(atomsUsed) != 1 {
			return nil, fmt.Errorf("%w: condition %s spans multiple atoms", ErrNotInClass, c)
		}
		for ai := range atomsUsed {
			condsOf[ai] = append(condsOf[ai], c)
		}
	}

	// The head is positional: group variables then the aggregation
	// variable (when present).
	head := d.Head
	nGroup := len(head)
	aggVar := ""
	if q.Op.NeedsVar() {
		nGroup--
		aggVar = head[nGroup]
	}

	// Root: the atom owning the aggregation variable; for COUNT(*), try
	// every atom.
	var rootCandidates []int
	if aggVar != "" {
		aggOccs := occs[aggVar]
		seen := map[int]bool{}
		for _, o := range aggOccs {
			if !seen[o.atom] {
				seen[o.atom] = true
				rootCandidates = append(rootCandidates, o.atom)
			}
		}
	} else {
		for ai := range d.Atoms {
			rootCandidates = append(rootCandidates, ai)
		}
	}

	var firstErr error
	for _, root := range rootCandidates {
		p, err := buildTree(schema, q, d, root, occs, condsOf, nGroup, aggVar)
		if err == nil {
			return p, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("%w: no valid root", ErrNotInClass)
	}
	return nil, firstErr
}

func buildTree(schema *db.Schema, q cq.AggQuery, d cq.CQ, root int,
	occs map[string][]varOcc, condsOf [][]cq.Condition,
	nGroup int, aggVar string) (*Plan, error) {

	n := len(d.Atoms)
	atoms := make([]atomInfo, n)
	for ai, a := range d.Atoms {
		atoms[ai] = atomInfo{
			atom:   a,
			rel:    schema.Relation(a.Rel),
			parent: -1,
			conds:  condsOf[ai],
		}
	}

	// Adjacency via shared variables.
	shared := map[[2]int][]string{}
	for v, os := range occs {
		for i := 0; i < len(os); i++ {
			for j := i + 1; j < len(os); j++ {
				a, bb := os[i].atom, os[j].atom
				if a == bb {
					continue
				}
				if a > bb {
					a, bb = bb, a
				}
				key := [2]int{a, bb}
				if !containsStr(shared[key], v) {
					shared[key] = append(shared[key], v)
				}
			}
		}
	}

	// BFS from the root, requiring a tree.
	visited := make([]bool, n)
	visited[root] = true
	queue := []int{root}
	order := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for other := 0; other < n; other++ {
			if other == cur {
				continue
			}
			key := [2]int{cur, other}
			if key[0] > key[1] {
				key = [2]int{other, cur}
			}
			if len(shared[key]) == 0 {
				continue
			}
			if visited[other] {
				// Sharing with an already-visited atom other than the
				// parent breaks the tree shape.
				if atoms[cur].parent != other && atoms[other].parent != cur {
					return nil, fmt.Errorf("%w: join graph is not a tree", ErrNotInClass)
				}
				continue
			}
			visited[other] = true
			atoms[other].parent = cur
			atoms[cur].children = append(atoms[cur].children, other)
			queue = append(queue, other)
			order = append(order, other)
		}
	}
	for ai := range atoms {
		if !visited[ai] {
			return nil, fmt.Errorf("%w: query is a cartesian product", ErrNotInClass)
		}
	}

	// Validate join edges: every shared variable between child and
	// parent must sit on a key position of the child, and the shared
	// variables must cover the child's entire key.
	for ai := range atoms {
		if atoms[ai].parent < 0 {
			continue
		}
		parent := atoms[ai].parent
		key := [2]int{ai, parent}
		if key[0] > key[1] {
			key = [2]int{parent, ai}
		}
		vars := shared[key]
		keyCovered := map[int]bool{}
		var edges []joinEdge
		for _, v := range vars {
			var childPos, parentPos []int
			for _, o := range occs[v] {
				switch o.atom {
				case ai:
					childPos = append(childPos, o.pos)
				case parent:
					parentPos = append(parentPos, o.pos)
				}
			}
			for _, cp := range childPos {
				if !isKeyPos(atoms[ai].rel, cp) {
					return nil, fmt.Errorf("%w: join on non-key attribute %s of %s",
						ErrNotInClass, atoms[ai].rel.Attrs[cp].Name, atoms[ai].rel.Name)
				}
				keyCovered[cp] = true
				edges = append(edges, joinEdge{childKeyPos: cp, parentPos: parentPos[0]})
			}
		}
		// Key positions bound by constants also count as covered.
		for _, kp := range atoms[ai].rel.Key {
			if atoms[ai].atom.Args[kp].IsConst {
				keyCovered[kp] = true
			}
		}
		for _, kp := range atoms[ai].rel.Key {
			if !keyCovered[kp] {
				return nil, fmt.Errorf("%w: join does not cover the key of %s",
					ErrNotInClass, atoms[ai].rel.Name)
			}
		}
		atoms[ai].parentJoin = edges
	}

	// Compile the per-atom local filters and child-key layouts once so
	// Execute's inner loops work purely on tuple positions.
	for ai := range atoms {
		a := atoms[ai].atom
		firstPos := map[string]int{}
		var lc localCheck
		for pos, t := range a.Args {
			if t.IsConst {
				lc.constPos = append(lc.constPos, pos)
				lc.constVal = append(lc.constVal, t.Const)
				continue
			}
			if fp, ok := firstPos[t.Var]; ok {
				lc.dupPairs = append(lc.dupPairs, [2]int{fp, pos})
			} else {
				firstPos[t.Var] = pos
			}
		}
		for _, c := range atoms[ai].conds {
			cc := condCheck{op: c.Op, leftPos: -1, rightPos: -1}
			if c.Left.IsConst {
				cc.leftVal = c.Left.Const
			} else {
				cc.leftPos = firstPos[c.Left.Var]
			}
			if c.Right.IsConst {
				cc.rightVal = c.Right.Const
			} else {
				cc.rightPos = firstPos[c.Right.Var]
			}
			lc.conds = append(lc.conds, cc)
		}
		atoms[ai].local = lc

		rel := atoms[ai].rel
		atoms[ai].keyFromParent = make([]int, len(rel.Key))
		atoms[ai].keyConsts = make(db.Tuple, len(rel.Key))
		for i, kp := range rel.Key {
			atoms[ai].keyFromParent[i] = -1
			if a.Args[kp].IsConst {
				atoms[ai].keyConsts[i] = a.Args[kp].Const
				continue
			}
			for _, edge := range atoms[ai].parentJoin {
				if edge.childKeyPos == kp {
					atoms[ai].keyFromParent[i] = edge.parentPos
					break
				}
			}
		}
	}

	// Grouping variables: each is owned by one atom. Join variables
	// occur in several atoms; prefer an occurrence on the root so the
	// per-group evaluation can reuse the group-independent child states.
	for hi := 0; hi < nGroup; hi++ {
		v := d.Head[hi]
		os := occs[v]
		if len(os) == 0 {
			return nil, fmt.Errorf("conquer: unbound head variable %s", v)
		}
		owner := os[0]
		for _, o := range os {
			if o.atom == root {
				owner = o
				break
			}
		}
		atoms[owner.atom].groupPositions = append(atoms[owner.atom].groupPositions,
			groupPos{headIndex: hi, pos: owner.pos})
	}

	// subtreeGroupIdx: the head indices owned by each atom's subtree,
	// used by Execute to enumerate reachable group projections.
	var fillSubtree func(ai int) []int
	fillSubtree = func(ai int) []int {
		var idx []int
		for _, gp := range atoms[ai].groupPositions {
			idx = append(idx, gp.headIndex)
		}
		for _, ci := range atoms[ai].children {
			idx = append(idx, fillSubtree(ci)...)
		}
		sort.Ints(idx)
		atoms[ai].subtreeGroupIdx = idx
		return idx
	}
	fillSubtree(root)

	aggPos := -1
	if aggVar != "" {
		for _, o := range occs[aggVar] {
			if o.atom == root {
				aggPos = o.pos
				break
			}
		}
		if aggPos < 0 {
			return nil, fmt.Errorf("%w: aggregation attribute not on the root relation", ErrNotInClass)
		}
	}

	return &Plan{
		q:       q,
		atoms:   atoms,
		root:    root,
		aggPos:  aggPos,
		grouped: nGroup > 0,
	}, nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func isKeyPos(rs *db.RelationSchema, pos int) bool {
	for _, k := range rs.Key {
		if k == pos {
			return true
		}
	}
	return false
}

// factState caches per-fact pass/cert/poss flags for one group filter.
// States live in a dense slice indexed by FactID (each fact is evaluated
// under exactly one atom — the query is self-join-free); done marks the
// memo entry as computed.
type factState struct {
	done bool
	pass bool
	cert bool
	poss bool
	// safe: every witness through this fact's subtree uses only facts
	// below it that are safe (singleton key-equal groups). The fact's
	// OWN group size is the caller's knowledge — it is folded in where
	// the group is enumerated (the child loop for child atoms, the
	// answer aggregation for root facts). Only meaningful when poss.
	safe bool
}

// failedState is the read-only state returned for root facts excluded
// by a group filter on the shared-memo path.
var failedState = &factState{done: true}

// atomData is the per-atom slice of the instance the executor scans:
// the relation's facts and the key-projection lookup map, both served
// from the (memoized) Indexes.
type atomData struct {
	facts  []db.FactID
	idx    *relIndex     // child lookup by key-projection hash
	groups [][]db.FactID // key-equal groups, enumeration order
	keyPos []int
}

// executor binds a Plan to one instance for a single Execute call.
type executor struct {
	*Plan
	in   *db.Instance
	data []atomData
}

// Execute runs the interval DP over the instance. ix supplies the
// memoized per-relation lookup maps (pass nil to index from scratch);
// parallelism bounds the worker pool fanned out over grouping keys (≤ 1
// runs sequentially). Cancelling ctx aborts the evaluation cooperatively
// and returns the context's error.
func (p *Plan) Execute(ctx context.Context, in *db.Instance, ix *Indexes, parallelism int) ([]GroupRange, error) {
	if ix == nil || ix.in != in {
		ix = NewIndexes(in)
	}
	tables := ix.tables()
	x := &executor{Plan: p, in: in, data: make([]atomData, len(p.atoms))}
	for ai := range p.atoms {
		rel := p.atoms[ai].rel
		ad := atomData{keyPos: rel.Key}
		if ri := tables[rel.Canon()]; ri != nil {
			ad.facts = ri.facts
			ad.idx = ri
			ad.groups = ri.groups
		}
		x.data[ai] = ad
	}
	return x.run(ctx, parallelism)
}

func (x *executor) run(ctx context.Context, parallelism int) ([]GroupRange, error) {
	// When every grouping attribute lives on the root atom, the child
	// states are group-independent: compute them once and filter only
	// the root facts per group (this is what keeps the rewriting's cost
	// one scan, not one scan per group, on high-cardinality groupings
	// like Q3's ORDER keys).
	rootOnlyGrouping := true
	for ai := range x.atoms {
		if ai != x.root && len(x.atoms[ai].groupPositions) > 0 {
			rootOnlyGrouping = false
			break
		}
	}

	// Root key-equal groups, straight from the memoized partition.
	rootData := x.data[x.root]
	allRootGroups := make([]rootGroup, len(rootData.groups))
	for i, members := range rootData.groups {
		allRootGroups[i] = rootGroup{members: members}
	}

	// Shared, group-independent states, pre-populated sequentially so
	// the parallel per-group closures below only ever read the memo.
	// activeGroups keeps only the root key-equal groups able to start a
	// witness at all — the rest contribute [0,0] to COUNT/SUM bounds,
	// stay escapable for MIN/MAX, and can never certify an answer, so
	// every aggregation below skips them.
	sharedEval := x.makeEval(nil)
	activeGroups := allRootGroups[:0:0]
	for ri, rg := range allRootGroups {
		if ri&255 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		anyPoss := false
		for _, f := range rg.members {
			if sharedEval(x.root, f).poss {
				anyPoss = true
			}
		}
		if anyPoss {
			activeGroups = append(activeGroups, rg)
		}
	}

	// Candidate group keys and, for grouped queries, the root key-equal
	// groups able to contribute to each.
	groupKeys := []db.Tuple{{}}
	var perGroup [][]rootGroup
	if x.grouped {
		var err error
		groupKeys, perGroup, err = x.bucketByGroupKey(ctx, activeGroups, sharedEval)
		if err != nil {
			return nil, err
		}
	}

	results := make([]*GroupRange, len(groupKeys))
	err := forEach(ctx, parallelism, len(groupKeys), func(ctx context.Context, gi int) error {
		g := groupKeys[gi]
		rgs := activeGroups
		if x.grouped {
			rgs = perGroup[gi]
		}
		var evalFact func(ai int, f db.FactID) *factState
		switch {
		case !x.grouped:
			evalFact = sharedEval
		case rootOnlyGrouping:
			// Shared child states; per-group filter applied to root
			// facts on top of the shared pass/cert/poss.
			evalFact = func(ai int, f db.FactID) *factState {
				st := sharedEval(ai, f)
				if ai != x.root || !st.pass {
					return st
				}
				for _, gp := range x.atoms[x.root].groupPositions {
					if !x.in.ValueAt(f, gp.pos).Equal(g[gp.headIndex]) {
						return failedState
					}
				}
				return st
			}
		default:
			// Grouping attributes on child atoms: the child states are
			// group-dependent, so evaluate afresh — but only over this
			// key's bucket of root groups.
			evalFact = x.makeEval(g)
		}
		res, err := x.aggregate(g, rgs, evalFact)
		if err != nil {
			return err
		}
		results[gi] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []GroupRange
	for _, res := range results {
		if res != nil {
			out = append(out, *res)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out, nil
}

// bucketByGroupKey enumerates the candidate group keys and, per key,
// the root key-equal groups able to contribute a row to it. A root
// fact's witness fixes one member per referenced child key-equal group
// (full-key joins are functional), so its reachable group keys are the
// merges of its own grouping positions with one reachable projection
// per grouped child subtree. Enumerating those per root fact, memoized
// bottom-up, replaces the former full-join evaluation of the underlying
// query — the candidate keys fall out of the same scan that buckets the
// root groups. Key-equal groups absent from a key's bucket cannot
// affect it: no member matches the key's group filter, so they add
// [0,0] to COUNT/SUM bounds, stay escapable for MIN/MAX, and can never
// certify the key as a consistent answer.
func (x *executor) bucketByGroupKey(ctx context.Context, rgs []rootGroup,
	sharedEval func(int, db.FactID) *factState) ([]db.Tuple, [][]rootGroup, error) {

	nG := len(x.q.GroupBy)
	identity := make([]int, nG)
	for i := range identity {
		identity[i] = i
	}
	scratch := make(db.Tuple, x.maxKeyLen())

	// reach(ai, f): the distinct group projections attainable by a
	// witness whose subtree at atom ai goes through fact f; nil when no
	// such witness exists. Projections are full-width tuples with only
	// the subtree-owned head positions filled.
	reachMemo := make([][]db.Tuple, x.in.NumFacts())
	reachDone := make([]bool, x.in.NumFacts())
	var reach func(ai int, f db.FactID) []db.Tuple
	reach = func(ai int, f db.FactID) []db.Tuple {
		if reachDone[f] {
			return reachMemo[f]
		}
		reachDone[f] = true
		if !sharedEval(ai, f).poss {
			return nil
		}
		base := make(db.Tuple, nG)
		for _, gp := range x.atoms[ai].groupPositions {
			base[gp.headIndex] = x.in.ValueAt(f, gp.pos)
		}
		acc := []db.Tuple{base}
		for _, ci := range x.atoms[ai].children {
			sub := x.atoms[ci].subtreeGroupIdx
			if len(sub) == 0 {
				// No grouping below this child: poss already guarantees
				// the subtree completes, and it binds no head position.
				continue
			}
			members := x.childMembers(ci, f, scratch)
			var childProjs []db.Tuple
			seen := map[string]bool{}
			for _, m := range members {
				for _, p := range reach(ci, m) {
					k := p.Key(sub)
					if !seen[k] {
						seen[k] = true
						childProjs = append(childProjs, p)
					}
				}
			}
			merged := make([]db.Tuple, 0, len(acc)*len(childProjs))
			for _, a := range acc {
				for _, c := range childProjs {
					mt := a.Clone()
					for _, hi := range sub {
						mt[hi] = c[hi]
					}
					merged = append(merged, mt)
				}
			}
			acc = merged
		}
		reachMemo[f] = acc
		return acc
	}

	type bucket struct {
		key  db.Tuple
		gids []int // indices into rgs
	}
	buckets := map[string]*bucket{}
	for ri := range rgs {
		if ri&255 == 0 && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		for _, f := range rgs[ri].members {
			for _, g := range reach(x.root, f) {
				k := g.Key(identity)
				b := buckets[k]
				if b == nil {
					b = &bucket{key: g}
					buckets[k] = b
				}
				// Facts of one key-equal group are scanned
				// consecutively, so a trailing-id check dedupes.
				if n := len(b.gids); n == 0 || b.gids[n-1] != ri {
					b.gids = append(b.gids, ri)
				}
			}
		}
	}

	keys := make([]db.Tuple, 0, len(buckets))
	for _, b := range buckets {
		keys = append(keys, b.key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	perGroup := make([][]rootGroup, len(keys))
	for gi, g := range keys {
		b := buckets[g.Key(identity)]
		groups := make([]rootGroup, len(b.gids))
		for i, ri := range b.gids {
			groups[i] = rgs[ri]
		}
		perGroup[gi] = groups
	}
	return keys, perGroup, nil
}

// maxKeyLen is the widest key among the plan's relations — the scratch
// size childKey needs.
func (x *executor) maxKeyLen() int {
	n := 0
	for ai := range x.atoms {
		if k := len(x.atoms[ai].rel.Key); k > n {
			n = k
		}
	}
	return n
}

// localPass evaluates atom-level constants and conditions on a fact.
// All checks are position-compiled (localCheck), so this allocates
// nothing on the hot path.
func (x *executor) localPass(ai int, f db.FactID) bool {
	t := x.in.Row(f)
	lc := &x.atoms[ai].local
	for i, pos := range lc.constPos {
		if !lc.constVal[i].Equal(t.Value(pos)) {
			return false
		}
	}
	for _, d := range lc.dupPairs {
		if !t.Value(d[0]).Equal(t.Value(d[1])) {
			return false
		}
	}
	for _, c := range lc.conds {
		l, r := c.leftVal, c.rightVal
		if c.leftPos >= 0 {
			l = t.Value(c.leftPos)
		}
		if c.rightPos >= 0 {
			r = t.Value(c.rightPos)
		}
		if !c.op.Apply(l, r) {
			return false
		}
	}
	return true
}

// makeEval builds a memoized bottom-up state evaluator. A nil group
// key disables group filtering (used for the shared child states).
// The memo is one dense slice indexed by FactID; the evaluator is for
// single-goroutine use (the shared memo is pre-populated sequentially
// before any parallel readers see it).
func (x *executor) makeEval(g db.Tuple) func(ai int, f db.FactID) *factState {
	states := make([]factState, x.in.NumFacts())
	scratch := make(db.Tuple, x.maxKeyLen())
	var evalFact func(ai int, f db.FactID) *factState
	evalFact = func(ai int, f db.FactID) *factState {
		st := &states[f]
		if st.done {
			return st
		}
		st.done = true
		st.pass = x.localPass(ai, f)
		if st.pass && g != nil {
			// Group filter: owned grouping positions must match g.
			for _, gp := range x.atoms[ai].groupPositions {
				if !x.in.ValueAt(f, gp.pos).Equal(g[gp.headIndex]) {
					st.pass = false
					break
				}
			}
		}
		if !st.pass {
			return st
		}
		st.cert, st.poss, st.safe = true, true, true
		for _, ci := range x.atoms[ai].children {
			// The referenced child key-equal group.
			members := x.childMembers(ci, f, scratch)
			if len(members) == 0 {
				st.cert, st.poss = false, false
				return st
			}
			// A child group with alternatives makes every witness through
			// it use a fact from a non-singleton group — unsafe; a
			// singleton child must itself be safe below.
			if len(members) != 1 {
				st.safe = false
			}
			anyPoss, allCert := false, true
			for _, m := range members {
				ms := evalFact(ci, m)
				if ms.poss {
					anyPoss = true
				}
				if !ms.cert {
					allCert = false
				}
				if len(members) == 1 && !ms.safe {
					st.safe = false
				}
			}
			st.cert = st.cert && allCert
			st.poss = st.poss && anyPoss
		}
		return st
	}
	return evalFact
}

// childMembers resolves the child key-equal group referenced by the
// parent fact: join positions take the parent's values, constant key
// positions take the constant. scratch must hold at least len(rel.Key)
// slots; the layout (keyFromParent/keyConsts) is precompiled by
// Analyze. The lookup is a HashProbeValue fold over the key values —
// paired with the HashRowOn hashes the relIndex was built from, and
// verified against the bucket's representative fact, so no key string
// is ever materialized. A probe string absent from the instance
// dictionary means no such group exists.
func (x *executor) childMembers(ci int, parentFact db.FactID, scratch db.Tuple) []db.FactID {
	a := &x.atoms[ci]
	ad := &x.data[ci]
	if ad.idx == nil {
		return nil
	}
	pt := x.in.Row(parentFact)
	vals := scratch[:len(a.keyFromParent)]
	h, ok := db.HashSeed, true
	for i, pp := range a.keyFromParent {
		if pp >= 0 {
			vals[i] = pt.Value(pp)
		} else {
			vals[i] = a.keyConsts[i]
		}
		if h, ok = x.in.HashProbeValue(h, vals[i]); !ok {
			return nil
		}
	}
	return ad.idx.lookup(x.in, ad.keyPos, h, vals)
}

// aggregate combines per-root-group optima into the group's interval.
// Returns nil when the group is not a consistent answer.
func (x *executor) aggregate(g db.Tuple, rootGroups []rootGroup,
	evalFact func(int, db.FactID) *factState) (*GroupRange, error) {

	op := x.q.Op
	value := func(f db.FactID) (int64, bool, error) {
		switch op {
		case cq.CountStar:
			return 1, true, nil
		case cq.Count:
			v := x.in.ValueAt(f, x.aggPos)
			if v.IsNull() {
				return 0, true, nil
			}
			return 1, true, nil
		case cq.Sum:
			v := x.in.ValueAt(f, x.aggPos)
			if v.IsNull() {
				return 0, true, nil
			}
			if v.Kind() != db.KindInt {
				return 0, false, fmt.Errorf("%w: SUM over non-integer values", ErrNotInClass)
			}
			n := v.AsInt()
			if n < 0 {
				return 0, false, fmt.Errorf("%w: SUM over negative values is not rewritable here", ErrNotInClass)
			}
			return n, true, nil
		default:
			return 0, false, nil
		}
	}

	// Consistency: some root group contributes a row to g in every
	// repair. Only group keys can be non-answers — a scalar query
	// always yields its one row — so skip the scan entirely otherwise.
	if x.grouped {
		consistent := false
		for _, rg := range rootGroups {
			all := true
			for _, f := range rg.members {
				if !evalFact(x.root, f).cert {
					all = false
					break
				}
			}
			if all && len(rg.members) > 0 {
				consistent = true
				break
			}
		}
		if !consistent {
			return nil, nil
		}
	}

	switch op {
	case cq.CountStar, cq.Count, cq.Sum:
		var glb, lub int64
		// Mirrors the SAT path's consistent-part folding condition: the
		// flag survives only while every witness of this answer is made
		// of safe facts — a possible root contributor in a non-singleton
		// group, or one whose subtree touches a non-singleton group,
		// kills it. Zero-weight contributors (COUNT over NULL, SUM over
		// NULL or 0) are exempt: the solver drops those witnesses before
		// the unsafe scan, so they must not kill the flag here either.
		fromCP := true
		for _, rg := range rootGroups {
			minC := int64(math.MaxInt64)
			maxC := int64(0)
			for _, f := range rg.members {
				st := evalFact(x.root, f)
				v, ok, err := value(f)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("%w: unsupported value", ErrNotInClass)
				}
				if st.poss && v != 0 && (len(rg.members) != 1 || !st.safe) {
					fromCP = false
				}
				var cMin, cMax int64
				switch {
				case st.cert:
					cMin, cMax = v, v
				case st.poss:
					cMin, cMax = 0, v
				default:
					cMin, cMax = 0, 0
				}
				if cMin < minC {
					minC = cMin
				}
				if cMax > maxC {
					maxC = cMax
				}
			}
			glb += minC
			lub += maxC
		}
		return &GroupRange{Key: g, GLB: db.Int(glb), LUB: db.Int(lub), FromConsistentPart: fromCP}, nil
	case cq.Min, cq.Max:
		return x.aggregateMinMax(g, rootGroups, evalFact)
	default:
		return nil, fmt.Errorf("%w: operator %s", ErrNotInClass, op)
	}
}

func (x *executor) aggregateMinMax(g db.Tuple, rootGroups []rootGroup,
	evalFact func(int, db.FactID) *factState) (*GroupRange, error) {

	op := x.q.Op
	// emptyPossible: every root group has an escape (an alternative
	// whose row can be avoided).
	emptyPossible := true
	for _, rg := range rootGroups {
		escapable := false
		for _, f := range rg.members {
			if !evalFact(x.root, f).cert {
				escapable = true
				break
			}
		}
		if !escapable && len(rg.members) > 0 {
			emptyPossible = false
			break
		}
	}

	var bestPoss db.Value // extreme attainable value (lub for MAX, glb for MIN)
	var forced db.Value   // the guaranteed endpoint
	for _, rg := range rootGroups {
		// Per group: the guaranteed value when every member is certain.
		var groupWorst db.Value // worst forced value among alternatives
		allCert := len(rg.members) > 0
		for _, f := range rg.members {
			st := evalFact(x.root, f)
			v := x.in.ValueAt(f, x.aggPos)
			if v.IsNull() {
				allCert = false
				continue
			}
			if st.poss {
				if bestPoss.IsNull() || better(op, v, bestPoss) {
					bestPoss = v
				}
			}
			if !st.cert {
				allCert = false
				continue
			}
			if groupWorst.IsNull() || better(op, groupWorst, v) {
				groupWorst = v
			}
		}
		if allCert && !groupWorst.IsNull() {
			// Every repair contains a row from this group with value at
			// least (MAX) / at most (MIN) groupWorst.
			if forced.IsNull() || better(op, groupWorst, forced) {
				forced = groupWorst
			}
		}
	}

	res := &GroupRange{Key: g, EmptyPossible: emptyPossible}
	if op == cq.Max {
		res.LUB = bestPoss
		if !emptyPossible {
			res.GLB = forced
		}
	} else {
		res.GLB = bestPoss
		if !emptyPossible {
			res.LUB = forced
		}
	}
	return res, nil
}

// better reports whether a is more extreme than b for the operator
// (greater for MAX, smaller for MIN).
func better(op cq.AggOp, a, b db.Value) bool {
	if op == cq.Max {
		return a.Compare(b) > 0
	}
	return a.Compare(b) < 0
}

// Describe renders the join tree for diagnostics.
func (p *Plan) Describe() string {
	var b strings.Builder
	for ai, a := range p.atoms {
		fmt.Fprintf(&b, "%d: %s parent=%d\n", ai, a.rel.Name, a.parent)
	}
	return b.String()
}
