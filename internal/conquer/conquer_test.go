package conquer

import (
	"errors"
	"fmt"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/exhaustive"
)

// treeSchema: fact table L(id, okey, g, v) with key id, dimension
// O(okey, c, status) with key okey, dimension C(ckey, seg) with key ckey
// referenced from O.c — the lineitem→orders→customer shape.
func treeSchema() *db.Schema {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "L",
		Attrs: []db.Attribute{
			{Name: "id", Kind: db.KindInt},
			{Name: "okey", Kind: db.KindInt},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "O",
		Attrs: []db.Attribute{
			{Name: "okey", Kind: db.KindInt},
			{Name: "c", Kind: db.KindInt},
			{Name: "status", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "C",
		Attrs: []db.Attribute{
			{Name: "ckey", Kind: db.KindInt},
			{Name: "seg", Kind: db.KindString},
		},
		Key: []int{0},
	})
	return s
}

type rng uint64

func (r *rng) next(n int) int {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return int(x % uint64(n))
}

// randomTreeInstance builds a small instance with key violations in all
// three relations and non-negative values, avoiding duplicate tuples.
func randomTreeInstance(r *rng) *db.Instance {
	in := db.NewInstance(treeSchema())
	segs := []string{"A", "B"}
	stats := []string{"x", "y"}
	groups := []string{"p", "q"}
	nC := 1 + r.next(2)
	for k := 0; k < nC; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			in.MustInsert("C", db.Int(int64(k)), db.Str(segs[a%len(segs)]))
		}
	}
	nO := 1 + r.next(3)
	for k := 0; k < nO; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			in.MustInsert("O",
				db.Int(int64(k)),
				db.Int(int64(r.next(nC+1))), // may dangle (missing customer)
				db.Str(stats[a%len(stats)]))
		}
	}
	nL := 2 + r.next(3)
	for k := 0; k < nL; k++ {
		alts := 1 + r.next(3)
		for a := 0; a < alts; a++ {
			in.MustInsert("L",
				db.Int(int64(k)),
				db.Int(int64(r.next(nO+1))), // may dangle
				db.Str(groups[(a+r.next(2))%len(groups)]),
				db.Int(int64(r.next(5)))) // non-negative values 0..4
		}
	}
	return in
}

func treeQuery(op cq.AggOp, grouped bool, withCustomer bool, statusFilter bool) cq.AggQuery {
	atoms := []cq.Atom{
		{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("g"), cq.V("v")}},
		{Rel: "O", Args: []cq.Term{cq.V("okey"), cq.V("c"), cq.V("st")}},
	}
	if withCustomer {
		atoms = append(atoms, cq.Atom{Rel: "C", Args: []cq.Term{cq.V("c"), cq.V("seg")}})
	}
	var conds []cq.Condition
	if statusFilter {
		conds = append(conds, cq.Condition{Left: cq.V("st"), Op: cq.OpEQ, Right: cq.C(db.Str("x"))})
	}
	q := cq.AggQuery{
		Op:         op,
		AggVar:     "v",
		Underlying: cq.Single(cq.CQ{Atoms: atoms, Conds: conds}),
	}
	if grouped {
		q.GroupBy = []string{"g"}
	}
	return q
}

func TestClassAccepts(t *testing.T) {
	in := randomTreeInstance(ptrRng(1))
	b := New(in)
	for _, q := range []cq.AggQuery{
		treeQuery(cq.Sum, false, true, true),
		treeQuery(cq.CountStar, true, false, false),
		treeQuery(cq.Max, false, true, false),
	} {
		if _, err := b.RangeAnswers(q); err != nil {
			t.Errorf("in-class query rejected: %v", err)
		}
	}
}

func ptrRng(seed uint64) *rng {
	r := rng(seed)
	return &r
}

func TestClassRejections(t *testing.T) {
	in := randomTreeInstance(ptrRng(2))
	b := New(in)

	// Self-join.
	selfJoin := cq.AggQuery{
		Op: cq.CountStar,
		Underlying: cq.Single(cq.CQ{Atoms: []cq.Atom{
			{Rel: "L", Args: []cq.Term{cq.V("a"), cq.V("k"), cq.V("g"), cq.V("v")}},
			{Rel: "L", Args: []cq.Term{cq.V("b"), cq.V("k"), cq.V("h"), cq.V("w")}},
		}}),
	}
	if _, err := b.RangeAnswers(selfJoin); !errors.Is(err, ErrNotInClass) {
		t.Errorf("self-join: %v", err)
	}

	// Non-key join (L.g = O.status): the Q5' pattern.
	nonKey := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "v",
		Underlying: cq.Single(cq.CQ{Atoms: []cq.Atom{
			{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("x"), cq.V("v")}},
			{Rel: "O", Args: []cq.Term{cq.V("okey2"), cq.V("c"), cq.V("x")}},
		}}),
	}
	if _, err := b.RangeAnswers(nonKey); !errors.Is(err, ErrNotInClass) {
		t.Errorf("non-key join: %v", err)
	}

	// Union of CQs.
	union := treeQuery(cq.Sum, false, false, false)
	union.Underlying.Disjuncts = append(union.Underlying.Disjuncts, union.Underlying.Disjuncts[0])
	if _, err := b.RangeAnswers(union); !errors.Is(err, ErrNotInClass) {
		t.Errorf("union: %v", err)
	}

	// DISTINCT operators.
	distinct := treeQuery(cq.SumDistinct, false, false, false)
	if _, err := b.RangeAnswers(distinct); !errors.Is(err, ErrNotInClass) {
		t.Errorf("distinct: %v", err)
	}

	// Cross-atom comparison condition.
	crossCond := treeQuery(cq.Sum, false, false, false)
	crossCond.Underlying.Disjuncts[0].Conds = []cq.Condition{
		{Left: cq.V("v"), Op: cq.OpLT, Right: cq.V("c")},
	}
	if _, err := b.RangeAnswers(crossCond); !errors.Is(err, ErrNotInClass) {
		t.Errorf("cross-atom condition: %v", err)
	}

	// Negative SUM values.
	neg := db.NewInstance(treeSchema())
	neg.MustInsert("L", db.Int(1), db.Int(1), db.Str("p"), db.Int(-5))
	neg.MustInsert("O", db.Int(1), db.Int(1), db.Str("x"))
	nb := New(neg)
	if _, err := nb.RangeAnswers(treeQuery(cq.Sum, false, false, false)); !errors.Is(err, ErrNotInClass) {
		t.Errorf("negative sum: %v", err)
	}
}

// TestAgainstExhaustive verifies the interval DP against brute-force
// repair enumeration on random instances and multiple query shapes.
func TestAgainstExhaustive(t *testing.T) {
	ops := []cq.AggOp{cq.CountStar, cq.Count, cq.Sum, cq.Min, cq.Max}
	trials := 80
	if testing.Short() {
		trials = 20
	}
	for seed := 1; seed <= trials; seed++ {
		r := rng(seed*888887 + 3)
		in := randomTreeInstance(&r)
		b := New(in)
		for _, op := range ops {
			for _, grouped := range []bool{false, true} {
				for _, withC := range []bool{false, true} {
					for _, filt := range []bool{false, true} {
						q := treeQuery(op, grouped, withC, filt)
						label := fmt.Sprintf("seed %d op %v grouped %v withC %v filt %v",
							seed, op, grouped, withC, filt)
						got, err := b.RangeAnswers(q)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						want, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{Mode: exhaustive.ModeKeys})
						if err != nil {
							t.Fatalf("%s: exhaustive: %v", label, err)
						}
						compare(t, label, got, want, op)
					}
				}
			}
		}
	}
}

func compare(t *testing.T, label string, got []GroupRange, want []exhaustive.GroupRange, op cq.AggOp) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers vs exhaustive %d\n got %+v\nwant %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Key.Compare(w.Key) != 0 {
			t.Fatalf("%s: key %v vs %v", label, g.Key, w.Key)
		}
		// On EmptyPossible MIN/MAX cases the rewriting leaves the
		// adversarial endpoint unbounded (NULL); compare only the
		// endpoints it claims.
		skipGLB := g.EmptyPossible && g.GLB.IsNull()
		skipLUB := g.EmptyPossible && g.LUB.IsNull()
		if g.EmptyPossible != w.EmptyPossible {
			t.Fatalf("%s: key %v EmptyPossible %v vs exhaustive %v",
				label, g.Key, g.EmptyPossible, w.EmptyPossible)
		}
		if (!skipGLB && !match(g.GLB, w.GLB)) || (!skipLUB && !match(g.LUB, w.LUB)) {
			t.Fatalf("%s: key %v range [%v,%v] vs exhaustive [%v,%v]",
				label, g.Key, g.GLB, g.LUB, w.GLB, w.LUB)
		}
	}
}

func match(a, b db.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	return a.Equal(b)
}

// TestBankExample reproduces the paper's running example through the
// rewriting (the query is in C_aggforest: CustAcc ⟕ Acc on Acc's key).
func TestBankExample(t *testing.T) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "Acc",
		Attrs: []db.Attribute{
			{Name: "ACCID", Kind: db.KindString},
			{Name: "BAL", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "CustAcc",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "ACCID", Kind: db.KindString},
		},
		Key: []int{0, 1},
	})
	in := db.NewInstance(s)
	// Balances shifted +100 against the paper so that SUM stays
	// non-negative (A3's conflicting variants become 1300/0).
	in.MustInsert("Acc", db.Str("A2"), db.Int(1000))
	in.MustInsert("Acc", db.Str("A3"), db.Int(1300))
	in.MustInsert("Acc", db.Str("A3"), db.Int(0))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A2"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A3"))
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "bal",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "CustAcc", Args: []cq.Term{cq.C(db.Str("C2")), cq.V("accid")}},
				{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("bal")}},
			},
		}),
	}
	got, err := New(in).RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].GLB.AsInt() != 1000 || got[0].LUB.AsInt() != 2300 {
		t.Fatalf("range = %+v, want [1000, 2300]", got)
	}
	// Hmm: glb should be 1000 (choose the 0-balance A3 variant): the
	// row still exists with value 0, so SUM = 1000 + 0.
}

func TestAggregationAttrMustBeOnRoot(t *testing.T) {
	in := randomTreeInstance(ptrRng(5))
	b := New(in)
	// SUM over a child attribute (O.c) with L in the query: L joins O on
	// O's key, so O cannot be the root (L would need to be joined on its
	// own full key from O, which it is not).
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "c",
		Underlying: cq.Single(cq.CQ{Atoms: []cq.Atom{
			{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("g"), cq.V("v")}},
			{Rel: "O", Args: []cq.Term{cq.V("okey"), cq.V("c"), cq.V("st")}},
		}}),
	}
	if _, err := b.RangeAnswers(q); !errors.Is(err, ErrNotInClass) {
		t.Errorf("child aggregation attribute: %v", err)
	}
}

// TestChildGroupingAgainstExhaustive exercises the Q4 shape: the
// grouping attribute lives on a child relation (O.status), so the DP
// falls back to per-group state evaluation.
func TestChildGroupingAgainstExhaustive(t *testing.T) {
	for seed := 1; seed <= 40; seed++ {
		r := rng(seed*52711 + 9)
		in := randomTreeInstance(&r)
		q := cq.AggQuery{
			Op:      cq.CountStar,
			GroupBy: []string{"st"},
			Underlying: cq.Single(cq.CQ{
				Atoms: []cq.Atom{
					{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("g"), cq.V("v")}},
					{Rel: "O", Args: []cq.Term{cq.V("okey"), cq.V("c"), cq.V("st")}},
				},
			}),
		}
		got, err := New(in).RangeAnswers(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{Mode: exhaustive.ModeKeys})
		if err != nil {
			t.Fatal(err)
		}
		compare(t, fmt.Sprintf("child grouping seed %d", seed), got, want, cq.CountStar)
	}
}

// TestMixedGroupingAgainstExhaustive groups by one root and one child
// attribute simultaneously.
func TestMixedGroupingAgainstExhaustive(t *testing.T) {
	for seed := 1; seed <= 30; seed++ {
		r := rng(seed*7477 + 3)
		in := randomTreeInstance(&r)
		q := cq.AggQuery{
			Op:      cq.Sum,
			AggVar:  "v",
			GroupBy: []string{"g", "st"},
			Underlying: cq.Single(cq.CQ{
				Atoms: []cq.Atom{
					{Rel: "L", Args: []cq.Term{cq.V("id"), cq.V("okey"), cq.V("g"), cq.V("v")}},
					{Rel: "O", Args: []cq.Term{cq.V("okey"), cq.V("c"), cq.V("st")}},
				},
			}),
		}
		got, err := New(in).RangeAnswers(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{Mode: exhaustive.ModeKeys})
		if err != nil {
			t.Fatal(err)
		}
		compare(t, fmt.Sprintf("mixed grouping seed %d", seed), got, want, cq.Sum)
	}
}
