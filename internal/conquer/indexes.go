package conquer

import (
	"sync"

	"aggcavsat/internal/db"
)

// keyBucket is one key-equal group reachable under a key-projection
// hash: repr is any member (all members agree on the key by
// construction), used to verify exact key equality on a hash hit.
type keyBucket struct {
	repr  db.FactID
	facts []db.FactID
}

// relIndex is the lookup structure for one relation: its fact list, a
// hash map from key projection to the key-equal group members sharing
// it, and the group member lists themselves in enumeration order (so
// Execute never re-derives the partition with per-fact key strings).
//
// byKey is keyed by db.Instance.HashRowOn hashes over the relation's
// key positions — dictionary-code folds under the columnar layout, so
// building and probing it never touches string bytes. Hashes are not
// injective: lookups walk the bucket chain and verify against repr.
type relIndex struct {
	facts  []db.FactID
	byKey  map[uint64][]keyBucket
	groups [][]db.FactID
}

// lookup returns the members of the key-equal group whose key
// projection EqualExact-matches vals (ordered by key position), or nil.
func (ri *relIndex) lookup(in *db.Instance, keyPos []int, h uint64, vals db.Tuple) []db.FactID {
	for _, b := range ri.byKey[h] {
		match := true
		for i, kp := range keyPos {
			if !in.MatchAt(b.repr, kp, vals[i]) {
				match = false
				break
			}
		}
		if match {
			return b.facts
		}
	}
	return nil
}

// Indexes memoizes the per-relation lookup maps the executor joins
// through. Instances are append-only, so the memo is keyed by fact
// count — the same invalidation rule as db.Instance.KeyEqualGroups,
// which supplies the grouping (one hash-verified partition shared with
// the SAT engine instead of a fresh string-keyed map per call).
//
// All methods are safe for concurrent use; a Planner shares one Indexes
// across every query served against its instance.
type Indexes struct {
	in *db.Instance

	mu     sync.Mutex
	nFacts int
	rels   map[string]*relIndex
}

// NewIndexes creates an empty memo over the instance. Nothing is built
// until the first Execute needs it.
func NewIndexes(in *db.Instance) *Indexes { return &Indexes{in: in} }

// tables returns the per-relation lookup maps, rebuilding them only
// when facts were appended since the last call. Keys are lowercase
// relation names (matching db.KeyEqualGroup.Rel); callers must treat
// the result as read-only.
func (ix *Indexes) tables() map[string]*relIndex {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := ix.in.NumFacts()
	if ix.rels != nil && n == ix.nFacts {
		return ix.rels
	}
	schema := ix.in.Schema()
	rels := make(map[string]*relIndex)
	for _, g := range ix.in.KeyEqualGroups() {
		ri := rels[g.Rel]
		if ri == nil {
			ri = &relIndex{facts: ix.in.RelFacts(g.Rel), byKey: map[uint64][]keyBucket{}}
			rels[g.Rel] = ri
		}
		rs := schema.Relation(g.Rel)
		if !rs.HasKey() {
			// Keyless relations never pass Analyze; keep their fact list
			// for completeness but skip the (meaningless) key map.
			continue
		}
		// One key hash per group instead of one string per fact: the
		// group's members agree on the key projection by construction.
		repr := g.Facts[0]
		h := ix.in.HashRowOn(repr, rs.Key, db.HashSeed)
		ri.byKey[h] = append(ri.byKey[h], keyBucket{repr: repr, facts: g.Facts})
		ri.groups = append(ri.groups, g.Facts)
	}
	// Relations with zero facts have no groups; materialize empty
	// entries so lookups distinguish "empty relation" from "stale memo".
	for _, rs := range schema.Relations() {
		if rels[rs.Canon()] == nil {
			rels[rs.Canon()] = &relIndex{byKey: map[uint64][]keyBucket{}}
		}
	}
	ix.nFacts = n
	ix.rels = rels
	return rels
}
