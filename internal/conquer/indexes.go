package conquer

import (
	"strings"
	"sync"

	"aggcavsat/internal/db"
)

// relIndex is the lookup structure for one relation: its fact list, a
// map from key projection to the key-equal group members sharing it,
// and the group member lists themselves in enumeration order (so
// Execute never re-derives the partition with per-fact key strings).
type relIndex struct {
	facts  []db.FactID
	byKey  map[string][]db.FactID
	groups [][]db.FactID
}

// Indexes memoizes the per-relation lookup maps the executor joins
// through. Instances are append-only, so the memo is keyed by fact
// count — the same invalidation rule as db.Instance.KeyEqualGroups,
// which supplies the grouping (one hash-verified partition shared with
// the SAT engine instead of a fresh string-keyed map per call).
//
// All methods are safe for concurrent use; a Planner shares one Indexes
// across every query served against its instance.
type Indexes struct {
	in *db.Instance

	mu     sync.Mutex
	nFacts int
	rels   map[string]*relIndex
}

// NewIndexes creates an empty memo over the instance. Nothing is built
// until the first Execute needs it.
func NewIndexes(in *db.Instance) *Indexes { return &Indexes{in: in} }

// tables returns the per-relation lookup maps, rebuilding them only
// when facts were appended since the last call. Keys are lowercase
// relation names (matching db.KeyEqualGroup.Rel); callers must treat
// the result as read-only.
func (ix *Indexes) tables() map[string]*relIndex {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := ix.in.NumFacts()
	if ix.rels != nil && n == ix.nFacts {
		return ix.rels
	}
	schema := ix.in.Schema()
	rels := make(map[string]*relIndex)
	for _, g := range ix.in.KeyEqualGroups() {
		ri := rels[g.Rel]
		if ri == nil {
			ri = &relIndex{facts: ix.in.RelFacts(g.Rel), byKey: map[string][]db.FactID{}}
			rels[g.Rel] = ri
		}
		rs := schema.Relation(g.Rel)
		if !rs.HasKey() {
			// Keyless relations never pass Analyze; keep their fact list
			// for completeness but skip the (meaningless) key map.
			continue
		}
		// One key string per group instead of one per fact: the group's
		// members agree on the key projection by construction.
		k := ix.in.Fact(g.Facts[0]).Tuple.Key(rs.Key)
		ri.byKey[k] = g.Facts
		ri.groups = append(ri.groups, g.Facts)
	}
	// Relations with zero facts have no groups; materialize empty
	// entries so lookups distinguish "empty relation" from "stale memo".
	for _, rs := range schema.Relations() {
		lc := strings.ToLower(rs.Name)
		if rels[lc] == nil {
			rels[lc] = &relIndex{byKey: map[string][]db.FactID{}}
		}
	}
	ix.nFacts = n
	ix.rels = rels
	return rels
}
