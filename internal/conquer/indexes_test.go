package conquer

import (
	"context"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// TestIndexesMemoized: the lookup tables are built once per instance
// version — repeated calls return the identical map, and appending a
// fact invalidates exactly once.
func TestIndexesMemoized(t *testing.T) {
	in := randomTreeInstance(ptrRng(3))
	ix := NewIndexes(in)
	t1 := ix.tables()
	t2 := ix.tables()
	if !sameTables(t1, t2) {
		t.Fatal("tables rebuilt despite unchanged instance")
	}
	id := in.MustInsert("C", db.Int(77), db.Str("A"))
	t3 := ix.tables()
	if sameTables(t1, t3) {
		t.Fatal("tables not rebuilt after append")
	}
	h, ok := in.HashProbeValue(db.HashSeed, db.Int(77))
	if !ok {
		t.Fatal("probe hash for Int(77) unavailable")
	}
	got := t3["c"].lookup(in, []int{0}, h, db.Tuple{db.Int(77)})
	if len(got) != 1 || got[0] != id {
		t.Fatalf("appended fact not indexed: %v", got)
	}
}

// sameTables reports whether two table snapshots are the same memoized
// build (maps are only ever replaced wholesale, so comparing one entry's
// pointer identity suffices).
func sameTables(a, b map[string]*relIndex) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		return b[k] == v
	}
	return true
}

// TestBaselineReuseStable: a Baseline answers the same query identically
// across repeated calls and across interleaved other queries — the memo
// must never leak state between shapes.
func TestBaselineReuseStable(t *testing.T) {
	in := randomTreeInstance(ptrRng(19))
	b := New(in)
	q := treeQuery(cq.Sum, true, true, false)
	first, err := b.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.RangeAnswers(treeQuery(cq.Max, false, false, true)); err != nil {
			t.Fatal(err)
		}
		got, err := b.RangeAnswers(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(first) {
			t.Fatalf("round %d: %d answers vs %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j].Key.Compare(first[j].Key) != 0 ||
				!match(got[j].GLB, first[j].GLB) || !match(got[j].LUB, first[j].LUB) {
				t.Fatalf("round %d answer %d drifted: %+v vs %+v", i, j, got[j], first[j])
			}
		}
	}
}

// benchInstance is a larger tree instance so indexing cost is visible.
func benchInstance() *db.Instance {
	in := db.NewInstance(treeSchema())
	r := ptrRng(99)
	for k := 0; k < 40; k++ {
		in.MustInsert("C", db.Int(int64(k)), db.Str([]string{"A", "B"}[k%2]))
	}
	for k := 0; k < 200; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			in.MustInsert("O", db.Int(int64(k)), db.Int(int64(r.next(41))), db.Str([]string{"x", "y"}[a%2]))
		}
	}
	for k := 0; k < 1000; k++ {
		alts := 1 + r.next(2)
		for a := 0; a < alts; a++ {
			in.MustInsert("L", db.Int(int64(k)), db.Int(int64(r.next(201))),
				db.Str([]string{"p", "q"}[a%2]), db.Int(int64(r.next(5))))
		}
	}
	return in
}

// BenchmarkBaselineMemoizedIndexes measures the production path: one
// Baseline, indexes built once, every iteration reuses them.
func BenchmarkBaselineMemoizedIndexes(b *testing.B) {
	in := benchInstance()
	bl := New(in)
	q := treeQuery(cq.Sum, true, true, false)
	if _, err := bl.RangeAnswers(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bl.RangeAnswers(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineFreshIndexes is the pre-memo behavior: rebuild the
// per-relation child index maps on every call (a fresh Baseline per
// iteration). The delta against BenchmarkBaselineMemoizedIndexes is the
// re-indexing cost the memo removes.
func BenchmarkBaselineFreshIndexes(b *testing.B) {
	in := benchInstance()
	q := treeQuery(cq.Sum, true, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(in).RangeAnswers(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanExecuteParallel measures the compiled plan under the
// worker pool (the planner's production entry point).
func BenchmarkPlanExecuteParallel(b *testing.B) {
	in := benchInstance()
	plan, err := Analyze(in.Schema(), treeQuery(cq.Sum, true, true, false).BuildHead())
	if err != nil {
		b.Fatal(err)
	}
	ix := NewIndexes(in)
	if _, err := plan.Execute(context.Background(), in, ix, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(context.Background(), in, ix, 0); err != nil {
			b.Fatal(err)
		}
	}
}
