package conquer

import (
	"context"
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) on at most workers
// goroutines, mirroring the engine worker pool: items are claimed from
// a shared atomic counter and fn(i) writes into slot i of a
// caller-owned slice, keeping the merged output deterministic. The
// first error cancels the derived context and is returned after all
// workers drain; a dead parent context wins and is returned as the
// context's own error (the caller maps it to its typed sentinel).
func forEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := fn(wctx, i); err != nil {
					once.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
