package exhaustive

import (
	"testing"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// bank builds the paper's Table I instance (fact IDs 0..13 = f1..f14).
func bank() *db.Instance {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "Cust",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "NAME", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "Acc",
		Attrs: []db.Attribute{
			{Name: "ACCID", Kind: db.KindString},
			{Name: "TYPE", Kind: db.KindString},
			{Name: "CITY", Kind: db.KindString},
			{Name: "BAL", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	s.MustAddRelation(&db.RelationSchema{
		Name: "CustAcc",
		Attrs: []db.Attribute{
			{Name: "CID", Kind: db.KindString},
			{Name: "ACCID", Kind: db.KindString},
		},
		Key: []int{0, 1},
	})
	in := db.NewInstance(s)
	in.MustInsert("Cust", db.Str("C1"), db.Str("John"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("LA"))
	in.MustInsert("Cust", db.Str("C2"), db.Str("Mary"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C3"), db.Str("Don"), db.Str("SF"))
	in.MustInsert("Cust", db.Str("C4"), db.Str("Jen"), db.Str("LA"))
	in.MustInsert("Acc", db.Str("A1"), db.Str("Check."), db.Str("LA"), db.Int(900))
	in.MustInsert("Acc", db.Str("A2"), db.Str("Check."), db.Str("LA"), db.Int(1000))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SJ"), db.Int(1200))
	in.MustInsert("Acc", db.Str("A3"), db.Str("Saving"), db.Str("SF"), db.Int(-100))
	in.MustInsert("Acc", db.Str("A4"), db.Str("Saving"), db.Str("SJ"), db.Int(300))
	in.MustInsert("CustAcc", db.Str("C1"), db.Str("A1"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A2"))
	in.MustInsert("CustAcc", db.Str("C2"), db.Str("A3"))
	in.MustInsert("CustAcc", db.Str("C3"), db.Str("A4"))
	return in
}

func TestRepairsKeysCount(t *testing.T) {
	in := bank()
	count := 0
	err := RepairsKeys(in, func(keep []bool) bool {
		count++
		// Each repair keeps exactly 12 facts (two 2-way choices).
		kept := 0
		for _, k := range keep {
			if k {
				kept++
			}
		}
		if kept != 12 {
			t.Errorf("repair keeps %d facts, want 12", kept)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("repairs = %d, want 4 (2 groups × 2 choices)", count)
	}
}

func TestRepairsKeysEarlyStop(t *testing.T) {
	in := bank()
	count := 0
	RepairsKeys(in, func(keep []bool) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d repairs", count)
	}
}

// paperSumQuery is the running-example query: SUM(BAL) over accounts of
// customer C2.
func paperSumQuery() cq.AggQuery {
	return cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "bal",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "CustAcc", Args: []cq.Term{cq.C(db.Str("C2")), cq.V("accid")}},
				{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("t"), cq.V("c"), cq.V("bal")}},
			},
		}),
	}
}

func TestRangeAnswersPaperExample(t *testing.T) {
	// Section I: the range consistent answer is [900, 2200].
	in := bank()
	got, err := RangeAnswers(in, paperSumQuery(), Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("answers = %v", got)
	}
	if got[0].GLB.AsInt() != 900 || got[0].LUB.AsInt() != 2200 {
		t.Fatalf("range = [%v, %v], want [900, 2200]", got[0].GLB, got[0].LUB)
	}
}

func TestRangeAnswersExampleIV1(t *testing.T) {
	// COUNT(*) of customers with an account in their own city: [1, 2].
	in := bank()
	q := cq.AggQuery{
		Op: cq.CountStar,
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("n"), cq.V("city")}},
				{Rel: "CustAcc", Args: []cq.Term{cq.V("cid"), cq.V("accid")}},
				{Rel: "Acc", Args: []cq.Term{cq.V("accid"), cq.V("t"), cq.V("city"), cq.V("b")}},
			},
		}),
	}
	got, err := RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].GLB.AsInt() != 1 || got[0].LUB.AsInt() != 2 {
		t.Fatalf("range = [%v, %v], want [1, 2]", got[0].GLB, got[0].LUB)
	}
}

func TestRangeAnswersCountDistinct(t *testing.T) {
	// Section IV-B: COUNT(DISTINCT Acc.TYPE) = [2, 2].
	in := bank()
	q := cq.AggQuery{
		Op:     cq.CountDistinct,
		AggVar: "type",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Acc", Args: []cq.Term{cq.V("id"), cq.V("type"), cq.V("c"), cq.V("b")}}},
		}),
	}
	got, err := RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].GLB.AsInt() != 2 || got[0].LUB.AsInt() != 2 {
		t.Fatalf("range = [%v, %v], want [2, 2]", got[0].GLB, got[0].LUB)
	}
}

func TestRangeAnswersGroupedPaperExample(t *testing.T) {
	// Section IV-C: COUNT(*) FROM Cust GROUP BY CITY.
	// Consistent groups: LA with [2,3] and SF with [1,2].
	in := bank()
	q := cq.AggQuery{
		Op:      cq.CountStar,
		GroupBy: []string{"city"},
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("n"), cq.V("city")}}},
		}),
	}
	got, err := RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
	la, sf := got[0], got[1]
	if la.Key[0].AsString() != "LA" || la.GLB.AsInt() != 2 || la.LUB.AsInt() != 3 {
		t.Errorf("LA = %+v, want [2,3]", la)
	}
	if sf.Key[0].AsString() != "SF" || sf.GLB.AsInt() != 1 || sf.LUB.AsInt() != 2 {
		t.Errorf("SF = %+v, want [1,2]", sf)
	}
}

func TestRangeAnswersInconsistentGroupDropped(t *testing.T) {
	// Grouping by NAME: Mary's group exists in every repair (both f2 and
	// f3 are named Mary); but grouping by a key-violating attribute that
	// differs across choices drops the group. Build a focused instance.
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindString},
			{Name: "g", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("k1"), db.Str("A"), db.Int(1))
	in.MustInsert("R", db.Str("k1"), db.Str("B"), db.Int(2)) // group differs per repair
	in.MustInsert("R", db.Str("k2"), db.Str("A"), db.Int(5))
	q := cq.AggQuery{
		Op:      cq.Sum,
		AggVar:  "v",
		GroupBy: []string{"g"},
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("g"), cq.V("v")}}},
		}),
	}
	got, err := RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	// Only group A is consistent (present in both repairs via k2);
	// group B is absent from the repair choosing fact 0.
	if len(got) != 1 || got[0].Key[0].AsString() != "A" {
		t.Fatalf("answers = %v, want only group A", got)
	}
	if got[0].GLB.AsInt() != 5 || got[0].LUB.AsInt() != 6 {
		t.Errorf("A range = [%v,%v], want [5,6]", got[0].GLB, got[0].LUB)
	}
}

func TestRepairsDCs(t *testing.T) {
	// Singleton violation {0} plus pair violation {1,2}: repairs drop
	// fact 0 and exactly one of 1, 2.
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindString},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	in.MustInsert("R", db.Str("bad"), db.Int(0)) // 0: singleton violation
	in.MustInsert("R", db.Str("k"), db.Int(1))   // 1
	in.MustInsert("R", db.Str("k"), db.Int(2))   // 2: key pair with 1
	in.MustInsert("R", db.Str("ok"), db.Int(3))  // 3: safe

	violations := []constraints.Violation{{0}, {1, 2}}
	var repairs [][]bool
	err := RepairsDCs(in, violations, func(keep []bool) bool {
		cp := append([]bool(nil), keep...)
		repairs = append(repairs, cp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(repairs))
	}
	for _, r := range repairs {
		if r[0] {
			t.Error("self-violating fact kept")
		}
		if !r[3] {
			t.Error("safe fact dropped")
		}
		if r[1] == r[2] {
			t.Error("key pair not resolved to exactly one")
		}
	}
}

func TestRangeAnswersDCModeMatchesKeyMode(t *testing.T) {
	// Keys expressed as DCs must give the same answers as ModeKeys.
	in := bank()
	dcs, err := constraints.SchemaKeyDCs(in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	q := paperSumQuery()
	keyAns, err := RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	dcAns, err := RangeAnswers(in, q, Options{Mode: ModeDCs, DCs: dcs})
	if err != nil {
		t.Fatal(err)
	}
	if len(keyAns) != len(dcAns) {
		t.Fatalf("answer counts differ: %v vs %v", keyAns, dcAns)
	}
	for i := range keyAns {
		if !keyAns[i].GLB.Equal(dcAns[i].GLB) || !keyAns[i].LUB.Equal(dcAns[i].LUB) {
			t.Errorf("answer %d differs: %+v vs %+v", i, keyAns[i], dcAns[i])
		}
	}
}

func TestRangeAnswersMinMax(t *testing.T) {
	in := bank()
	q := paperSumQuery()
	q.Op = cq.Max
	got, err := RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	// MAX over repairs: with f8 (1200) → 1200; with f9 (-100) → 1000.
	if got[0].GLB.AsInt() != 1000 || got[0].LUB.AsInt() != 1200 {
		t.Fatalf("MAX range = [%v,%v], want [1000,1200]", got[0].GLB, got[0].LUB)
	}
	q.Op = cq.Min
	got, err = RangeAnswers(in, q, Options{Mode: ModeKeys})
	if err != nil {
		t.Fatal(err)
	}
	// MIN over repairs: with f8 → 1000; with f9 → -100.
	if got[0].GLB.AsInt() != -100 || got[0].LUB.AsInt() != 1000 {
		t.Fatalf("MIN range = [%v,%v], want [-100,1000]", got[0].GLB, got[0].LUB)
	}
}

func TestRepairsKeysTooMany(t *testing.T) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	for k := 0; k < 23; k++ {
		for alt := 0; alt < 2; alt++ {
			in.MustInsert("R", db.Int(int64(k)), db.Int(int64(alt)))
		}
	}
	err := RepairsKeys(in, func([]bool) bool { return true })
	if err == nil {
		t.Error("2^23 repairs should exceed the cap")
	}
}
