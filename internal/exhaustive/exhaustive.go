// Package exhaustive computes range consistent answers by brute force:
// it enumerates every repair of the inconsistent instance and aggregates
// over each. It is exponential and intended solely as ground truth for
// the SAT pipeline of internal/core in tests and benchmarks on small
// instances.
package exhaustive

import (
	"fmt"
	"sort"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
)

// MaxRepairs caps enumeration; exceeding it is an error rather than a
// runaway computation.
const MaxRepairs = 1 << 22

// RepairsKeys enumerates all subset repairs of the instance w.r.t. the
// key constraints of its schema: every key-equal group contributes
// exactly one fact. The callback receives a keep mask indexed by FactID;
// it must not retain the slice. Enumeration stops early if the callback
// returns false.
func RepairsKeys(in *db.Instance, visit func(keep []bool) bool) error {
	groups := in.KeyEqualGroups()
	var total int64 = 1
	for _, g := range groups {
		total *= int64(len(g.Facts))
		if total > MaxRepairs {
			return fmt.Errorf("exhaustive: more than %d repairs", MaxRepairs)
		}
	}
	keep := make([]bool, in.NumFacts())
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(groups) {
			return visit(keep)
		}
		for _, f := range groups[i].Facts {
			keep[f] = true
			if !rec(i + 1) {
				keep[f] = false
				return false
			}
			keep[f] = false
		}
		return true
	}
	rec(0)
	return nil
}

// RepairsDCs enumerates all subset repairs w.r.t. a set of denial
// constraints, given the minimal violations: repairs are the maximal
// subsets containing no minimal violation. Facts outside every violation
// are always kept.
func RepairsDCs(in *db.Instance, violations []constraints.Violation, visit func(keep []bool) bool) error {
	// Collect the facts participating in violations.
	inViol := make([]bool, in.NumFacts())
	for _, v := range violations {
		for _, f := range v {
			inViol[f] = true
		}
	}
	var unsafe []db.FactID
	for f := 0; f < in.NumFacts(); f++ {
		if inViol[f] {
			unsafe = append(unsafe, db.FactID(f))
		}
	}
	if len(unsafe) > 22 {
		return fmt.Errorf("exhaustive: %d facts in violations; too many subsets", len(unsafe))
	}
	// Pre-translate violations into bitmasks over the unsafe facts.
	pos := map[db.FactID]int{}
	for i, f := range unsafe {
		pos[f] = i
	}
	masks := make([]uint64, len(violations))
	for i, v := range violations {
		var m uint64
		for _, f := range v {
			m |= 1 << uint(pos[f])
		}
		masks[i] = m
	}
	n := uint(len(unsafe))
	consistent := func(set uint64) bool {
		for _, m := range masks {
			if set&m == m {
				return false
			}
		}
		return true
	}
	// Collect consistent subsets, then filter to maximal ones.
	var consSets []uint64
	for set := uint64(0); set < 1<<n; set++ {
		if consistent(set) {
			consSets = append(consSets, set)
		}
	}
	keep := make([]bool, in.NumFacts())
	for f := 0; f < in.NumFacts(); f++ {
		keep[f] = !inViol[f]
	}
	for _, set := range consSets {
		maximal := true
		for b := uint(0); b < n; b++ {
			if set&(1<<b) == 0 && consistent(set|1<<b) {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		for i, f := range unsafe {
			keep[f] = set&(1<<uint(i)) != 0
		}
		if !visit(keep) {
			break
		}
	}
	return nil
}

// GroupRange is a range consistent answer: a grouping key present in
// every repair, together with the glb and lub of the aggregate over all
// repairs. For scalar queries the key is the empty tuple.
//
// For MIN/MAX the endpoints range over the repairs with a non-empty
// result; EmptyPossible reports that some repair produced no rows (its
// MIN/MAX would be SQL NULL).
type GroupRange struct {
	Key           db.Tuple
	GLB           db.Value
	LUB           db.Value
	EmptyPossible bool
}

// Mode selects which constraints define the repairs.
type Mode int

const (
	// ModeKeys repairs with respect to the schema's key constraints.
	ModeKeys Mode = iota
	// ModeDCs repairs with respect to an explicit denial constraint set.
	ModeDCs
)

// Options configures RangeAnswers.
type Options struct {
	Mode Mode
	// DCs is consulted when Mode == ModeDCs.
	DCs []constraints.DC
}

// RangeAnswers computes the exact range consistent answers of the
// aggregation query by enumerating every repair (Fuxman-Fazli-Miller
// semantics for grouped queries: a group is an answer only if it appears
// in every repair).
func RangeAnswers(in *db.Instance, q cq.AggQuery, opts Options) ([]GroupRange, error) {
	q = q.BuildHead()
	if err := q.Validate(in.Schema()); err != nil {
		return nil, err
	}
	e := cq.NewEvaluator(in)
	rows := e.EvalUCQ(q.Underlying)

	type groupAgg struct {
		key           db.Tuple
		seenIn        int64 // number of repairs the group appears in
		glb           db.Value
		lub           db.Value
		emptyPossible bool
	}
	groups := map[string]*groupAgg{}
	var repairCount int64

	positions := make([]int, len(q.GroupBy))
	for i := range positions {
		positions[i] = i
	}

	visit := func(keep []bool) bool {
		repairCount++
		// Aggregate the surviving rows per group.
		local := map[string]*localAgg{}
		var order []string
		for _, r := range rows {
			alive := true
			for _, f := range r.Facts {
				if !keep[f] {
					alive = false
					break
				}
			}
			if !alive {
				continue
			}
			key := r.Head[:len(q.GroupBy)]
			k := key.Key(positions)
			st, ok := local[k]
			if !ok {
				st = &localAgg{key: key.Clone(), distinct: map[string]bool{}}
				local[k] = st
				order = append(order, k)
			}
			var v db.Value
			if q.Op.NeedsVar() {
				v = r.Head[len(q.GroupBy)]
			}
			st.add(q.Op, v)
		}
		if q.Scalar() && len(local) == 0 {
			// Scalar queries always produce one row per repair.
			local[""] = &localAgg{key: db.Tuple{}, distinct: map[string]bool{}}
			order = append(order, "")
		}
		for _, k := range order {
			st := local[k]
			v := st.value(q.Op)
			g, ok := groups[k]
			if !ok {
				g = &groupAgg{key: st.key, glb: v, lub: v}
				groups[k] = g
			}
			g.seenIn++
			if v.IsNull() {
				// A repair with an empty result (MIN/MAX over nothing).
				g.emptyPossible = true
			} else {
				if g.glb.IsNull() || v.Compare(g.glb) < 0 {
					g.glb = v
				}
				if g.lub.IsNull() || v.Compare(g.lub) > 0 {
					g.lub = v
				}
			}
		}
		return true
	}

	var err error
	switch opts.Mode {
	case ModeKeys:
		err = RepairsKeys(in, visit)
	case ModeDCs:
		violations := constraints.MinimalViolations(e, opts.DCs)
		err = RepairsDCs(in, violations, visit)
	default:
		err = fmt.Errorf("exhaustive: unknown mode %d", opts.Mode)
	}
	if err != nil {
		return nil, err
	}

	var out []GroupRange
	for _, g := range groups {
		if g.seenIn == repairCount { // consistent group: present in every repair
			out = append(out, GroupRange{Key: g.key, GLB: g.glb, LUB: g.lub, EmptyPossible: g.emptyPossible})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Compare(out[j].Key) < 0 })
	return out, nil
}

// localAgg mirrors cq's aggregation state for one repair.
type localAgg struct {
	key      db.Tuple
	count    int64
	sum      int64
	fsum     float64
	isFloat  bool
	min, max db.Value
	distinct map[string]bool
}

func (st *localAgg) add(op cq.AggOp, v db.Value) {
	switch op {
	case cq.CountStar:
		st.count++
	case cq.Count:
		if !v.IsNull() {
			st.count++
		}
	case cq.CountDistinct:
		if !v.IsNull() {
			k := db.Tuple{v}.Key([]int{0})
			if !st.distinct[k] {
				st.distinct[k] = true
				st.count++
			}
		}
	case cq.Sum, cq.Avg:
		if !v.IsNull() {
			st.count++
			st.addSum(v)
		}
	case cq.SumDistinct:
		if !v.IsNull() {
			k := db.Tuple{v}.Key([]int{0})
			if !st.distinct[k] {
				st.distinct[k] = true
				st.count++
				st.addSum(v)
			}
		}
	case cq.Min:
		if !v.IsNull() && (st.min.IsNull() || v.Compare(st.min) < 0) {
			st.min = v
		}
	case cq.Max:
		if !v.IsNull() && (st.max.IsNull() || v.Compare(st.max) > 0) {
			st.max = v
		}
	}
}

func (st *localAgg) addSum(v db.Value) {
	if v.Kind() == db.KindFloat {
		st.isFloat = true
	}
	if st.isFloat {
		st.fsum += float64(st.sum) + v.AsFloat()
		st.sum = 0
	} else {
		st.sum += v.AsInt()
	}
}

func (st *localAgg) value(op cq.AggOp) db.Value {
	switch op {
	case cq.CountStar, cq.Count, cq.CountDistinct:
		return db.Int(st.count)
	case cq.Sum, cq.SumDistinct:
		if st.isFloat {
			return db.Float(st.fsum)
		}
		return db.Int(st.sum)
	case cq.Min:
		return st.min
	case cq.Max:
		return st.max
	case cq.Avg:
		if st.count == 0 {
			return db.Null()
		}
		if st.isFloat {
			return db.Float(st.fsum / float64(st.count))
		}
		return db.Float(float64(st.sum) / float64(st.count))
	default:
		panic("exhaustive: unknown aggregation operator")
	}
}
