GO ?= go

.PHONY: all build test vet race bench fuzz ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-hammers the concurrency-sensitive packages: the metrics registry
# and the debug HTTP server (live /metrics + /debug/trace scrapes racing
# the instrumentation writers), the SAT solver (progress callbacks and
# cooperative interrupts fire from inside the search), the MaxSAT
# algorithms under cancellation, the core worker pool (parallel groups/
# components/candidate shards) with the flight recorder fed from worker
# goroutines, the parallel witness enumerator (shared evaluator,
# plan/index caches), the bench harness, the facade (one System hammered
# by concurrent QueryContext callers), the query service (admission
# gate handoffs, singleflight coalescing, hot tenant re-attach), and the
# fact store (frozen columnar instances and mmap-backed snapshots read
# by concurrent query workers while the dictionary and arenas must stay
# immutable). -short skips the slowest property-test sweeps so the run
# stays usable on small CI boxes.
race:
	$(GO) test -race -short . ./internal/obsv/... ./internal/sat/... ./internal/maxsat/... ./internal/core/... ./internal/cq/... ./internal/bench/... ./internal/server/... ./internal/planner/... ./internal/conquer/... ./internal/db/...

# Micro-benchmarks: the clone-vs-rebuild and shared-base suites in
# sat/maxsat/core (the PR 3 incremental-solving win), the compiled-vs-
# interpreted evaluation and key-fast-path constraint suites in
# cq/constraints (the PR 4 front-end win), the memoized-vs-fresh
# rewriting index suite in conquer (the PR 8 planner fast path), plus
# the end-to-end harness benchmarks. Pipe two runs through benchstat to
# compare.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sat/ ./internal/maxsat/ ./internal/core/ ./internal/cq/ ./internal/constraints/ ./internal/conquer/ ./internal/bench/

# Fuzz smoke: a bounded run of the planner equivalence fuzzer
# (planner-auto ≡ forced-SAT ≡ exhaustive repair enumeration on random
# instances). The committed seed corpus always runs as part of `make
# test`; this target additionally mutates for FUZZTIME.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzPlannerEquivalence -fuzztime=$(FUZZTIME) ./internal/planner/

ci: build vet test race
