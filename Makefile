GO ?= go

.PHONY: all build test vet race bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-hammers the concurrency-sensitive packages: the metrics registry,
# the SAT solver (progress callbacks and cooperative interrupts fire
# from inside the search), the MaxSAT algorithms under cancellation, and
# the core worker pool (parallel groups/components/candidate shards).
# -short skips the slowest property-test sweeps so the run stays usable
# on small CI boxes.
race:
	$(GO) test -race -short ./internal/obsv/... ./internal/sat/... ./internal/maxsat/... ./internal/core/...

# Micro-benchmarks: the clone-vs-rebuild and shared-base suites in
# sat/maxsat/core (the PR 3 incremental-solving win) plus the end-to-end
# harness benchmarks. Pipe two runs through benchstat to compare.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/sat/ ./internal/maxsat/ ./internal/core/ ./internal/bench/

ci: build vet test race
