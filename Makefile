GO ?= go

.PHONY: all build test vet race bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-hammers the concurrency-sensitive packages: the metrics registry
# and the SAT solver (progress callbacks fire from inside the search).
race:
	$(GO) test -race ./internal/obsv/... ./internal/sat/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/bench/

ci: build vet test race
