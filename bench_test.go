package aggcavsat_test

// Benchmarks regenerating the paper's evaluation artifacts: one
// benchmark per figure and table of Section VI (see DESIGN.md's
// per-experiment index). `go test -bench=. -benchmem` runs them all on a
// reduced calibration so the suite completes in minutes; use
// cmd/aggbench for the full tables.

import (
	"io"
	"testing"

	"aggcavsat/internal/bench"
	"aggcavsat/internal/core"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/exhaustive"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/medigap"
	"aggcavsat/internal/tpch"
)

// benchConfig is a lighter calibration than aggbench's default, sized
// for repeated b.N iterations.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.SFSmall = 0.0005
	cfg.SFMedium = 0.001
	cfg.SFLarge = 0.002
	cfg.MedigapScale = 0.1
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	r := bench.NewRunner(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Experiment(name, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1ScalarVsConQuer(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFigure2PDBenchScalar(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkTable2PDBenchProfiles(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkFigure3InconsistencySweep(b *testing.B) {
	runExperiment(b, "fig3")
}
func BenchmarkTable3abCNFSizes(b *testing.B)        { runExperiment(b, "table3ab") }
func BenchmarkFigure4SizeSweep(b *testing.B)        { runExperiment(b, "fig4") }
func BenchmarkTable3cdCNFSizes(b *testing.B)        { runExperiment(b, "table3cd") }
func BenchmarkFigure5GroupedVsConQuer(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFigure6PDBenchGrouped(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFigure7GroupedInconsistency(b *testing.B) {
	runExperiment(b, "fig7")
}
func BenchmarkFigure8GroupedSizes(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkTable4MedigapProfile(b *testing.B) {
	runExperiment(b, "table4")
}
func BenchmarkFigure9Medigap(b *testing.B) { runExperiment(b, "fig9") }

// Finer-grained benchmarks of the pipeline stages on a fixed instance.

func benchInstance(b *testing.B) *db.Instance {
	b.Helper()
	base := tpch.Generate(0.0005, 7)
	in, err := tpch.Inject(base, tpch.InjectOptions{Percent: 10, MinGroup: 2, MaxGroup: 7, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkScalarSumQuery measures one full scalar SUM range computation
// (Q6'-shaped: witnesses + Reduction IV.1 + two WPMaxSAT solves).
func BenchmarkScalarSumQuery(b *testing.B) {
	in := benchInstance(b)
	q, err := tpch.QueryByName("Q6'")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := q.Translate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.New(in, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RangeAnswers(tr.Aggs[0].Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupedCountQuery measures a grouped COUNT(*) range
// computation (Q12-shaped: Algorithm 2, one consistency SAT pass plus
// two WPMaxSAT solves per consistent group).
func BenchmarkGroupedCountQuery(b *testing.B) {
	in := benchInstance(b)
	q, err := tpch.QueryByName("Q12")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := q.Translate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.New(in, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RangeAnswers(tr.Aggs[0].Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReductionV1Medigap measures the denial-constraint pipeline:
// minimal violations, near-violations, and a grouped query.
func BenchmarkReductionV1Medigap(b *testing.B) {
	in, err := medigap.Generate(0.1, 3)
	if err != nil {
		b.Fatal(err)
	}
	dcs, err := medigap.Constraints(in.Schema())
	if err != nil {
		b.Fatal(err)
	}
	q := medigap.Queries()[8] // Q9m: grouped over the inconsistent PBS
	tr, err := q.Translate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.New(in, core.Options{Mode: core.DCMode, DCs: dcs})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RangeAnswers(tr.Aggs[0].Query); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks: the MaxSAT back ends on the same reduction
// (DESIGN.md's design-choice ablation — MaxHS-style hitting sets vs
// core-guided RC2 vs linear search).
func benchSolver(b *testing.B, alg maxsat.Algorithm) {
	in := benchInstance(b)
	q, err := tpch.QueryByName("Q12'")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := q.Translate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.New(in, core.Options{MaxSAT: maxsat.Options{Algorithm: alg}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RangeAnswers(tr.Aggs[0].Query); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverMaxHS(b *testing.B) { benchSolver(b, maxsat.AlgMaxHS) }
func BenchmarkSolverRC2(b *testing.B)   { benchSolver(b, maxsat.AlgRC2) }
func BenchmarkSolverLSU(b *testing.B)   { benchSolver(b, maxsat.AlgLSU) }

// BenchmarkExhaustiveBaseline sizes the brute-force alternative the SAT
// pipeline replaces (tiny instance: repair enumeration is exponential).
func BenchmarkExhaustiveBaseline(b *testing.B) {
	s := db.NewSchema()
	s.MustAddRelation(&db.RelationSchema{
		Name: "R",
		Attrs: []db.Attribute{
			{Name: "k", Kind: db.KindInt},
			{Name: "v", Kind: db.KindInt},
		},
		Key: []int{0},
	})
	in := db.NewInstance(s)
	for k := 0; k < 12; k++ {
		in.MustInsert("R", db.Int(int64(k)), db.Int(int64(k)))
		in.MustInsert("R", db.Int(int64(k)), db.Int(int64(k+100)))
	}
	q := cq.AggQuery{
		Op:     cq.Sum,
		AggVar: "v",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "R", Args: []cq.Term{cq.V("k"), cq.V("v")}}},
		}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exhaustive.RangeAnswers(in, q, exhaustive.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
