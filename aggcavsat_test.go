package aggcavsat

import (
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"aggcavsat/internal/cq"
	"aggcavsat/internal/sqlparse"
)

// bank builds the paper's Table I database through the public API.
func bank(t *testing.T) *Instance {
	t.Helper()
	s := NewSchema()
	mustAdd := func(r *RelationSchema) {
		t.Helper()
		if err := s.AddRelation(r); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&RelationSchema{
		Name: "Cust",
		Attrs: []Attribute{
			{Name: "CID", Kind: KindString},
			{Name: "NAME", Kind: KindString},
			{Name: "CITY", Kind: KindString},
		},
		Key: []int{0},
	})
	mustAdd(&RelationSchema{
		Name: "Acc",
		Attrs: []Attribute{
			{Name: "ACCID", Kind: KindString},
			{Name: "TYPE", Kind: KindString},
			{Name: "CITY", Kind: KindString},
			{Name: "BAL", Kind: KindInt},
		},
		Key: []int{0},
	})
	mustAdd(&RelationSchema{
		Name: "CustAcc",
		Attrs: []Attribute{
			{Name: "CID", Kind: KindString},
			{Name: "ACCID", Kind: KindString},
		},
		Key: []int{0, 1},
	})
	in := NewInstance(s)
	in.MustInsert("Cust", Str("C1"), Str("John"), Str("LA"))
	in.MustInsert("Cust", Str("C2"), Str("Mary"), Str("LA"))
	in.MustInsert("Cust", Str("C2"), Str("Mary"), Str("SF"))
	in.MustInsert("Cust", Str("C3"), Str("Don"), Str("SF"))
	in.MustInsert("Cust", Str("C4"), Str("Jen"), Str("LA"))
	in.MustInsert("Acc", Str("A1"), Str("Check."), Str("LA"), Int(900))
	in.MustInsert("Acc", Str("A2"), Str("Check."), Str("LA"), Int(1000))
	in.MustInsert("Acc", Str("A3"), Str("Saving"), Str("SJ"), Int(1200))
	in.MustInsert("Acc", Str("A3"), Str("Saving"), Str("SF"), Int(-100))
	in.MustInsert("Acc", Str("A4"), Str("Saving"), Str("SJ"), Int(300))
	in.MustInsert("CustAcc", Str("C1"), Str("A1"))
	in.MustInsert("CustAcc", Str("C2"), Str("A2"))
	in.MustInsert("CustAcc", Str("C2"), Str("A3"))
	in.MustInsert("CustAcc", Str("C3"), Str("A4"))
	return in
}

func TestQueryScalarSQL(t *testing.T) {
	sys, err := Open(bank(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`SELECT SUM(Acc.BAL) FROM Acc, CustAcc
		WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Ranges) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	r := res.Rows[0].Ranges[0]
	if r.GLB.AsInt() != 900 || r.LUB.AsInt() != 2200 {
		t.Fatalf("range = %s, want [900, 2200]", FormatRange(r))
	}
	if res.Stats.SATCalls == 0 {
		t.Error("stats not accumulated")
	}
}

func TestQueryGroupedSQL(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	res, err := sys.Query(`SELECT CITY, COUNT(*) FROM Cust GROUP BY CITY ORDER BY CITY DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "CITY" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// DESC: SF first.
	if res.Rows[0].Key[0].AsString() != "SF" {
		t.Errorf("order by desc broken: %v", res.Rows[0].Key)
	}
	sf := res.Rows[0].Ranges[0]
	if sf.GLB.AsInt() != 1 || sf.LUB.AsInt() != 2 {
		t.Errorf("SF range = %s", FormatRange(sf))
	}
}

func TestQueryMultipleAggregates(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	res, err := sys.Query(`SELECT CITY, COUNT(*), MAX(BAL) FROM Acc GROUP BY CITY ORDER BY CITY`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Fatalf("columns = %v", res.Columns)
	}
	for _, row := range res.Rows {
		if len(row.Ranges) != 2 {
			t.Fatalf("row %v has %d ranges", row.Key, len(row.Ranges))
		}
	}
}

func TestQueryTop(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	res, err := sys.Query(`SELECT TOP 1 CITY, COUNT(*) FROM Cust GROUP BY CITY ORDER BY CITY`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key[0].AsString() != "LA" {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestDenialConstraintMode(t *testing.T) {
	in := bank(t)
	var dcs []DenialConstraint
	for _, rel := range []string{"Cust", "Acc", "CustAcc"} {
		rs := in.Schema().Relation(rel)
		var nonKey []string
		for i, a := range rs.Attrs {
			isKey := false
			for _, k := range rs.Key {
				if k == i {
					isKey = true
				}
			}
			if !isKey {
				nonKey = append(nonKey, a.Name)
			}
		}
		if len(nonKey) == 0 {
			continue
		}
		fd, err := FD(rs, rs.KeyNames(), nonKey...)
		if err != nil {
			t.Fatal(err)
		}
		dcs = append(dcs, fd...)
	}
	sys, err := Open(in, Options{DenialConstraints: dcs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`SELECT SUM(Acc.BAL) FROM Acc, CustAcc
		WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0].Ranges[0]
	if r.GLB.AsInt() != 900 || r.LUB.AsInt() != 2200 {
		t.Fatalf("DC-mode range = %s, want [900, 2200]", FormatRange(r))
	}
}

func TestSolverSelection(t *testing.T) {
	for _, alg := range []SolverAlgorithm{SolverRC2, SolverLSU} {
		sys, err := Open(bank(t), Options{Solver: alg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Query(`SELECT COUNT(*) FROM Cust, Acc, CustAcc
			WHERE Cust.CID = CustAcc.CID AND Acc.ACCID = CustAcc.ACCID
			AND Cust.CITY = Acc.CITY`)
		if err != nil {
			t.Fatal(err)
		}
		r := res.Rows[0].Ranges[0]
		if r.GLB.AsInt() != 1 || r.LUB.AsInt() != 2 {
			t.Errorf("%v: range = %s, want [1, 2]", alg, FormatRange(r))
		}
	}
}

func TestConsistentAnswersAPI(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	u := cq.Single(cq.CQ{
		Head:  []string{"name"},
		Atoms: []cq.Atom{{Rel: "Cust", Args: []cq.Term{cq.V("cid"), cq.V("name"), cq.V("city")}}},
	})
	ans, err := sys.ConsistentAnswers(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 4 {
		t.Errorf("consistent names = %v", ans)
	}
}

func TestRangeAnswersAlgebraic(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	q := AggQuery{
		Op:     cq.Max,
		AggVar: "bal",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{{Rel: "Acc", Args: []cq.Term{cq.V("id"), cq.V("t"), cq.V("c"), cq.V("bal")}}},
		}),
	}
	ans, stats, err := sys.RangeAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("%+v", ans)
	}
	if ans[0].GLB.AsInt() != 1000 || ans[0].LUB.AsInt() != 1200 {
		t.Errorf("MAX range = [%v, %v], want [1000, 1200]", ans[0].GLB, ans[0].LUB)
	}
	if stats.SATCalls == 0 {
		t.Error("no SAT calls recorded")
	}
}

func TestQueryErrors(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	if _, err := sys.Query("SELECT nonsense"); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := sys.Query("SELECT AVG(BAL) FROM Acc"); err == nil {
		t.Error("AVG should be rejected by the engine")
	}
}

func TestFormatRange(t *testing.T) {
	r := Range{GLB: Int(5), LUB: Int(9)}
	if FormatRange(r) != "[5, 9]" {
		t.Error(FormatRange(r))
	}
	r = Range{GLB: Int(5), LUB: Int(5)}
	if FormatRange(r) != "5" {
		t.Error(FormatRange(r))
	}
	// Null endpoints render as documented tokens, never as a raw null
	// leaking into the interval syntax.
	r = Range{GLB: Null(), LUB: Int(5)}
	if got := FormatRange(r); got != "[-∞, 5]" {
		t.Errorf("half-open glb = %q, want [-∞, 5]", got)
	}
	r = Range{GLB: Int(5), LUB: Null()}
	if got := FormatRange(r); got != "[5, +∞]" {
		t.Errorf("half-open lub = %q, want [5, +∞]", got)
	}
	r = Range{}
	if got := FormatRange(r); got != "NULL" {
		t.Errorf("null range = %q, want NULL", got)
	}
}

func TestConsistentPartShortcutPublicAPI(t *testing.T) {
	// A query touching only consistent facts reports FromConsistentPart
	// and makes no SAT calls.
	sys, _ := Open(bank(t), Options{})
	res, err := sys.Query(`SELECT COUNT(*) FROM Cust WHERE NAME = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0].Ranges[0]
	if !r.FromConsistentPart {
		t.Error("expected consistent-part answer")
	}
	if FormatRange(r) != "1" {
		t.Errorf("range = %s", FormatRange(r))
	}
	if res.Stats.SATCalls != 0 {
		t.Errorf("SAT calls = %d, want 0", res.Stats.SATCalls)
	}
}

func TestLoadDirRoundTrip(t *testing.T) {
	in := bank(t)
	dir := t.TempDir()
	if err := in.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(in.Schema(), dir)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Open(loaded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`SELECT SUM(Acc.BAL) FROM Acc, CustAcc
		WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`)
	if err != nil {
		t.Fatal(err)
	}
	if FormatRange(res.Rows[0].Ranges[0]) != "[900, 2200]" {
		t.Errorf("after CSV round trip: %s", FormatRange(res.Rows[0].Ranges[0]))
	}
}

func TestDistinctThroughSQL(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	res, err := sys.Query(`SELECT COUNT(DISTINCT TYPE) FROM Acc`)
	if err != nil {
		t.Fatal(err)
	}
	if FormatRange(res.Rows[0].Ranges[0]) != "2" {
		t.Errorf("COUNT(DISTINCT) = %s, want 2", FormatRange(res.Rows[0].Ranges[0]))
	}
	res, err = sys.Query(`SELECT SUM(DISTINCT BAL) FROM Acc WHERE TYPE = 'Saving'`)
	if err != nil {
		t.Fatal(err)
	}
	// Repairs: {1200, 300} → 1500 or {-100, 300} → 200.
	if FormatRange(res.Rows[0].Ranges[0]) != "[200, 1500]" {
		t.Errorf("SUM(DISTINCT) = %s, want [200, 1500]", FormatRange(res.Rows[0].Ranges[0]))
	}
}

func TestMinMaxThroughSQL(t *testing.T) {
	sys, _ := Open(bank(t), Options{})
	res, err := sys.Query(`SELECT MIN(BAL), MAX(BAL) FROM Acc`)
	if err != nil {
		t.Fatal(err)
	}
	minR, maxR := res.Rows[0].Ranges[0], res.Rows[0].Ranges[1]
	// MIN possible values: with f8 → 300; with f9 → -100.
	if FormatRange(minR) != "[-100, 300]" {
		t.Errorf("MIN = %s", FormatRange(minR))
	}
	// MAX possible values: with f8 → 1200; with f9 → 1000.
	if FormatRange(maxR) != "[1000, 1200]" {
		t.Errorf("MAX = %s", FormatRange(maxR))
	}
}

// TestExternalSolverLoop closes the loop on the paper's process-level
// MaxHS integration: the system writes DIMACS WCNF and shells out to a
// MaxSAT binary — here cmd/wcnfsolve, i.e. this repository's own solver
// behind the external interface.
func TestExternalSolverLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "wcnfsolve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/wcnfsolve")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Skipf("cannot build wcnfsolve: %v (%s)", err, out)
	}
	sys, err := Open(bank(t), Options{
		Solver:             SolverExternal,
		ExternalSolverPath: bin,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(`SELECT SUM(Acc.BAL) FROM Acc, CustAcc
		WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`)
	if err != nil {
		t.Fatal(err)
	}
	if FormatRange(res.Rows[0].Ranges[0]) != "[900, 2200]" {
		t.Errorf("external-solver range = %s", FormatRange(res.Rows[0].Ranges[0]))
	}
}

func TestExplainAndJournalThroughFacade(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Open(bank(t), Options{Explain: true, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	sql := `SELECT CITY, COUNT(*), MAX(BAL) FROM Acc GROUP BY CITY ORDER BY CITY`
	res, err := sys.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explains) != 2 {
		t.Fatalf("explains = %d, want one per aggregate", len(res.Explains))
	}
	for i, ex := range res.Explains {
		if ex == nil || len(ex.Components) == 0 {
			t.Errorf("explain %d empty: %+v", i, ex)
		}
	}
	if res.Explains[0].Op != "COUNT(*)" || res.Explains[1].Op != "MAX" {
		t.Errorf("explain ops = %q, %q", res.Explains[0].Op, res.Explains[1].Op)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal lines = %d, want one per aggregate solve", len(entries))
	}
	for i, e := range entries {
		if e.Query != sql {
			t.Errorf("line %d label = %q, want the SQL text", i, e.Query)
		}
	}
}

// TestMultiAggregateDivergentGroups is the regression test for the
// multi-aggregate merge bug: a group present in one aggregate's answer
// set but absent from another's used to be emitted with a zero-valued
// Range (both endpoints null) that rendered like a real interval. The
// merge must instead drop the group and count it in PartialGroups.
// Divergent answer sets cannot be produced by a single SQL statement
// (all aggregates share FROM/WHERE), so the translation is grafted from
// two statements whose WHERE clauses differ.
func TestMultiAggregateDivergentGroups(t *testing.T) {
	sys, err := Open(bank(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	trAll, err := sqlparse.ParseAndTranslate(
		`SELECT CITY, COUNT(*) FROM Acc GROUP BY CITY`, sys.in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	trCheck, err := sqlparse.ParseAndTranslate(
		`SELECT CITY, COUNT(*) FROM Acc WHERE TYPE = 'Check.' GROUP BY CITY`, sys.in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// Unrestricted: consistent groups {LA, SJ} (A3's city is uncertain,
	// so SF is not certain; A4 pins SJ). Checking accounts only: {LA}.
	combined := &sqlparse.Translation{
		Stmt:      trAll.Stmt,
		Aggs:      []sqlparse.AggTranslation{trAll.Aggs[0], trCheck.Aggs[0]},
		GroupCols: trAll.GroupCols,
	}
	res, err := sys.run(context.Background(), combined)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialGroups != 1 {
		t.Errorf("PartialGroups = %d, want 1 (SJ has no checking-account answer)", res.PartialGroups)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key[0].AsString() != "LA" {
		t.Fatalf("rows = %+v, want only the LA group", res.Rows)
	}
	for i, rng := range res.Rows[0].Ranges {
		if rng.GLB.IsNull() || rng.LUB.IsNull() {
			t.Errorf("range %d = %s: surviving rows must have no null cells", i, FormatRange(rng))
		}
	}
}

// TestConcurrentMixedQueries hammers one System from many goroutines
// with a mix of scalar, grouped, multi-aggregate, DISTINCT and MIN/MAX
// statements — the core assumption of the query server. Run under
// -race (make race covers this package); answers must also match a
// sequential run exactly.
func TestConcurrentMixedQueries(t *testing.T) {
	sys, err := Open(bank(t), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT SUM(Acc.BAL) FROM Acc, CustAcc WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`,
		`SELECT CITY, COUNT(*) FROM Cust GROUP BY CITY ORDER BY CITY`,
		`SELECT CITY, COUNT(*), MAX(BAL) FROM Acc GROUP BY CITY ORDER BY CITY`,
		`SELECT COUNT(DISTINCT CITY) FROM Cust`,
		`SELECT MIN(BAL) FROM Acc`,
		`SELECT CITY, SUM(BAL) FROM Acc GROUP BY CITY`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := sys.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want[i] = renderRows(res)
	}
	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*len(queries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries)
				res, err := sys.Query(queries[i])
				if err != nil {
					errs <- fmt.Errorf("%s: %w", queries[i], err)
					return
				}
				if got := renderRows(res); got != want[i] {
					errs <- fmt.Errorf("%s: concurrent answer drift:\n got %s\nwant %s", queries[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// renderRows flattens a result into a comparable string.
func renderRows(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for _, v := range row.Key {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		for _, r := range row.Ranges {
			b.WriteString(FormatRange(r))
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
