// Command aggbench regenerates the paper's evaluation tables and
// figures (Section VI) on the scaled-down substrate.
//
//	aggbench                # run everything, in paper order
//	aggbench -exp fig1      # one experiment (see -list)
//	aggbench -sf-small 0.002 -seed 7
//
// Output is plain text, one aligned table per experiment; EXPERIMENTS.md
// is produced from a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aggcavsat/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment to run ('all' or one of -list)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Float64Var(&cfg.SFSmall, "sf-small", cfg.SFSmall, "scale factor standing in for the paper's 1 GB repairs")
	flag.Float64Var(&cfg.SFMedium, "sf-medium", cfg.SFMedium, "scale factor for 3 GB")
	flag.Float64Var(&cfg.SFLarge, "sf-large", cfg.SFLarge, "scale factor for 5 GB")
	flag.Float64Var(&cfg.MedigapScale, "medigap-scale", cfg.MedigapScale, "Medigap dataset scale (1.0 = 61K tuples)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}
	r := bench.NewRunner(cfg)
	var err error
	if *exp == "all" {
		err = r.All(os.Stdout)
	} else {
		err = r.Experiment(*exp, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggbench:", err)
		os.Exit(1)
	}
}
