// Command aggbench regenerates the paper's evaluation tables and
// figures (Section VI) on the scaled-down substrate.
//
//	aggbench                # run everything, in paper order
//	aggbench -exp fig1      # one experiment (see -list)
//	aggbench -sf-small 0.002 -seed 7
//
// Output is plain text, one aligned table per experiment; EXPERIMENTS.md
// is produced from a full run.
//
// Observability:
//
//	-json dir         write BENCH_<experiment>.json record files (one
//	                  RunRecord per measurement: witness/constraint/
//	                  encode/solve ms, SAT calls, CNF size, timeouts)
//	-trace out.json   Chrome trace-event file covering the whole run
//	-listen addr      serve /metrics, /debug/trace, /debug/pprof and
//	                  /healthz on addr while the suite runs (curl it for
//	                  live progress)
//	-flight-dir dir   write flight-recorder bundles (recent solver
//	                  events + metrics) for queries that time out or
//	                  exceed -slow-query
//	-slow-query D     queries slower than D dump a flight bundle even on
//	                  success (0 = only timeouts/errors)
//	-compare old.json diff this run's records against a BENCH_*.json
//	                  baseline and report slowdowns plus allocation and
//	                  live-heap growth (informational unless
//	                  -compare-strict, which exits non-zero on a
//	                  deterministic flag: memory growth, answers drift,
//	                  or a new timeout — never wall-clock alone)
//	-journal f.jsonl  append one wide-event JSON line per engine call
//	                  (bounded, non-blocking writer; -listen exposes the
//	                  tail at /debug/journal)
//	-journal-read f   decode a journal file, print a per-query summary
//	                  table, and exit (non-zero on malformed lines)
//	-v                debug logging (per-experiment progress) on stderr
//
// Load replay:
//
//	-replay           replay a mixed query stream against one engine and
//	                  print a p50/p90/p99/max latency table instead of
//	                  running experiments
//	-replay-from f    query stream source: a journal captured with
//	                  -journal (its Query labels are replayed) or a spec
//	                  file (one workload query name per line, # comments);
//	                  default is the built-in scalar+grouped mix
//	-replay-n N       queries to issue (stream cycled/truncated; default
//	                  one pass over the stream)
//	-qps F            open-loop target arrival rate (0 = closed loop)
//	-replay-concurrency N  max in-flight queries (default 4)
//	-target URL       replay over HTTP against a running cavsatd instead
//	                  of in-process; each distinct query is also solved
//	                  locally and the server's answer digests must match
//	                  (the run exits non-zero on drift or when nothing
//	                  was answered). The server must serve the identical
//	                  instance: cavsatd -dbgen with the same -sf-small,
//	                  -seed and inconsistency settings.
//	-replay-instance  server tenant name for -target (default: the
//	                  server's sole instance)
//
// Concurrency and timeouts:
//
//	-planner M        planner mode for every engine the suite builds:
//	                  force-sat (default — the paper tables measure the
//	                  WPMaxSAT pipeline), auto, force-rewrite; the pr8
//	                  experiment measures auto vs force-sat regardless
//	-incremental=false  run every experiment on the legacy
//	                  one-solver-per-run path (the pr3 experiment
//	                  measures both paths regardless)
//	-frontend=false   run every experiment on the legacy interpreted
//	                  relational front end (the pr4 experiment measures
//	                  both front ends regardless)
//	-parallel N, -p N worker-pool size inside each measured query
//	                  (0 = GOMAXPROCS, 1 = sequential); parallel runs
//	                  produce identical answers but per-phase times sum
//	                  worker durations and can exceed wall clock
//	-timeout D        wall-clock bound per query (e.g. 30s); expired
//	                  queries count in the experiment's timeout column
//	-cpuprofile f     write a pprof CPU profile of the whole run to f
//	-memprofile f     write a pprof heap profile at the end of the run
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"text/tabwriter"

	"aggcavsat/internal/bench"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/planner"
)

func main() {
	cfg := bench.DefaultConfig()
	exp := flag.String("exp", "all", "experiment to run ('all' or one of -list)")
	list := flag.Bool("list", false, "list experiment names and exit")
	jsonDir := flag.String("json", "", "directory for BENCH_<experiment>.json record files")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Float64Var(&cfg.SFSmall, "sf-small", cfg.SFSmall, "scale factor standing in for the paper's 1 GB repairs")
	flag.Float64Var(&cfg.SFMedium, "sf-medium", cfg.SFMedium, "scale factor for 3 GB")
	flag.Float64Var(&cfg.SFLarge, "sf-large", cfg.SFLarge, "scale factor for 5 GB")
	flag.Float64Var(&cfg.MedigapScale, "medigap-scale", cfg.MedigapScale, "Medigap dataset scale (1.0 = 61K tuples)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.Parallelism, "parallel", cfg.Parallelism, "worker-pool size per query (0 = GOMAXPROCS, 1 = sequential)")
	flag.IntVar(&cfg.Parallelism, "p", cfg.Parallelism, "shorthand for -parallel")
	plannerMode := flag.String("planner", "force-sat", "planner mode for every engine the suite builds: force-sat (default; the paper tables measure the WPMaxSAT pipeline), auto, force-rewrite (the pr8 experiment measures auto vs force-sat regardless)")
	incremental := flag.Bool("incremental", true, "share per-component hard-clause solver bases inside each engine (false = legacy one-solver-per-run path; the pr3 experiment measures both regardless)")
	frontend := flag.Bool("frontend", true, "use the compiled relational front end (false = legacy interpreted evaluation and grouping; the pr4 experiment measures both regardless)")
	flag.DurationVar(&cfg.Timeout, "timeout", cfg.Timeout, "wall-clock bound per query, e.g. 30s (0 = none)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	listen := flag.String("listen", "", "serve /metrics, /debug/trace, /debug/pprof and /healthz on this address while the suite runs")
	flightDir := flag.String("flight-dir", "", "write flight-recorder bundles for anomalous queries into this directory")
	flag.DurationVar(&cfg.SlowQuery, "slow-query", cfg.SlowQuery, "queries slower than this dump a flight bundle even on success (0 = only timeouts/errors)")
	compare := flag.String("compare", "", "diff this run's records against a BENCH_*.json baseline (time, allocation, and live-heap columns; informational unless -compare-strict)")
	compareStrict := flag.Bool("compare-strict", false, "exit non-zero when -compare flags a deterministic regression (memory growth, answers drift, new timeout; wall-clock stays informational)")
	journalPath := flag.String("journal", "", "append one wide-event JSON line per engine call to this file")
	journalRead := flag.String("journal-read", "", "decode a journal file, print a per-query summary, and exit")
	replay := flag.Bool("replay", false, "replay a query stream against one engine and print a latency percentile table")
	replayFrom := flag.String("replay-from", "", "replay stream source: a journal or a spec file of query names (default: built-in mix)")
	replayN := flag.Int("replay-n", 0, "queries to issue during -replay (0 = one pass over the stream)")
	qps := flag.Float64("qps", 0, "open-loop target arrival rate for -replay (0 = closed loop)")
	replayConc := flag.Int("replay-concurrency", 0, "max in-flight queries during -replay (0 = default 4)")
	target := flag.String("target", "", "replay against a running cavsatd at this base URL instead of in-process; answers are digest-checked against a local execution and the run fails on drift or zero answered queries")
	replayInstance := flag.String("replay-instance", "", "server tenant to query in -target mode (default: the server's sole instance)")
	flag.Parse()
	cfg.DisableIncremental = !*incremental
	cfg.DisableFrontendOpt = !*frontend
	pm, perr := planner.ParseMode(*plannerMode)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "aggbench:", perr)
		os.Exit(1)
	}
	cfg.Planner = pm

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	if *list {
		fmt.Println(strings.Join(bench.Names(), "\n"))
		return
	}
	if *journalRead != "" {
		if err := printJournalSummary(*journalRead, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		return
	}
	var journal *obsv.Journal
	if *journalPath != "" {
		j, err := obsv.OpenJournal(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		journal = j
		cfg.Journal = j
		defer func() {
			j.Close()
			logger.Debug("journal closed", "path", j.Path(), "written", j.Written(), "dropped", j.Dropped())
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "aggbench:", err)
			}
		}()
	}
	if *flightDir != "" {
		cfg.OnAnomaly = obsv.DumpDir(*flightDir)
	}
	var metrics *obsv.Registry
	var tracer *obsv.Tracer
	if *trace != "" || *listen != "" {
		tracer = obsv.NewTracer()
	}
	if *listen != "" {
		metrics = obsv.NewRegistry()
		cfg.Metrics = metrics
	}
	r := bench.NewRunner(cfg)
	if tracer != nil {
		r.WithContext(obsv.WithTracer(context.Background(), tracer))
	}
	if *listen != "" {
		srv, err := obsv.Serve(*listen, metrics, tracer, journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "aggbench: debug server on http://"+srv.Addr())
	}

	var err error
	switch {
	case *replay:
		var rep *bench.ReplayReport
		rep, err = r.Replay(bench.ReplayOptions{
			Source:      *replayFrom,
			N:           *replayN,
			QPS:         *qps,
			Concurrency: *replayConc,
			Target:      *target,
			Instance:    *replayInstance,
		}, os.Stdout)
		// In target mode the replay doubles as a correctness gate: a
		// server that answered nothing or answered differently from the
		// local engine fails the run (CI relies on the exit code).
		if err == nil && *target != "" {
			switch {
			case rep.Drift > 0:
				// The server trace ids key the divergent solves in the
				// server's journal and /debug/trace?trace=<id>.
				if len(rep.DriftTraces) > 0 {
					err = fmt.Errorf("replay: %d answers drifted from the local execution (server traces: %s)",
						rep.Drift, strings.Join(rep.DriftTraces, ", "))
				} else {
					err = fmt.Errorf("replay: %d answers drifted from the local execution", rep.Drift)
				}
			case rep.Answered() == 0:
				err = fmt.Errorf("replay: no queries answered (issued %d, errors %d, timeouts %d, shed %d)",
					rep.Issued, rep.Errors, rep.Timeouts, rep.Shed)
			}
		}
	case *exp == "all":
		err = r.All(os.Stdout)
	default:
		err = r.Experiment(*exp, os.Stdout)
	}
	if err != nil {
		if journal != nil {
			journal.Close()
		}
		fmt.Fprintln(os.Stderr, "aggbench:", err)
		os.Exit(1)
	}
	if *jsonDir != "" {
		if err := r.WriteRecords(*jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		logger.Debug("records written", "dir", *jsonDir, "records", len(r.Records()))
	}
	if tracer != nil && *trace != "" {
		out, err := os.Create(*trace)
		if err == nil {
			err = tracer.WriteChromeTrace(out)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		logger.Debug("trace written", "path", *trace, "spans", tracer.Len(), "dropped", tracer.Dropped())
	}
	if *compare != "" {
		baseline, err := bench.LoadRecords(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		rep := bench.CompareRecords(baseline, r.Records(), bench.CompareOptions{})
		rep.Fprint(os.Stderr)
		if *compareStrict && len(rep.GatingRegressions()) > 0 {
			fmt.Fprintln(os.Stderr, "aggbench: -compare-strict: deterministic regressions flagged")
			os.Exit(1)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		logger.Debug("heap profile written", "path", *memprofile)
	}
}

// printJournalSummary decodes a query journal and prints one row per
// distinct query label: line count, errors, anomalies, and the mean
// total latency. A malformed line fails the whole read (the CI smoke
// step relies on that to catch journal-format regressions).
func printJournalSummary(path string, w io.Writer) error {
	entries, err := obsv.ReadJournalFile(path)
	if err != nil {
		return err
	}
	type agg struct {
		lines, errors, anomalies int
		totalMS                  float64
	}
	byQuery := map[string]*agg{}
	for _, e := range entries {
		a, ok := byQuery[e.Query]
		if !ok {
			a = &agg{}
			byQuery[e.Query] = a
		}
		a.lines++
		if e.Error != "" {
			a.errors++
		}
		if e.Anomaly != "" {
			a.anomalies++
		}
		a.totalMS += e.TotalMS
	}
	var order []string
	for q := range byQuery {
		order = append(order, q)
	}
	sort.Strings(order)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tlines\terrors\tanomalies\tmean ms\n")
	for _, q := range order {
		a := byQuery[q]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\n", q, a.lines, a.errors, a.anomalies, a.totalMS/float64(a.lines))
	}
	fmt.Fprintf(tw, "total\t%d\t\t\t\n", len(entries))
	return tw.Flush()
}
