// Command cavsatd serves consistent answers of aggregation queries over
// HTTP: a long-running query service over one or more attached database
// instances, with admission control, a result cache, and the full debug
// plane (/metrics, /healthz, /debug/trace, /debug/journal, pprof) in
// the same listener.
//
//	cavsatd -listen :7878 -data bank=testdata/bank
//	cavsatd -listen :7878 -dbgen            # demo TPC-H tenant
//
// Endpoints:
//
//	POST /query            {"instance": ..., "sql": ..., "label": ...,
//	                        "timeout_ms": ...} → range answers JSON
//	GET  /query?q=...      same via URL parameters (instance, q, label,
//	                        timeout_ms)
//	GET  /admin/instances  list attached tenants
//	POST /admin/instances  {"name": ..., "dir": ...} hot-attach a
//	                        schema.txt + CSV directory
//	GET  /metrics          Prometheus exposition: engine counters plus
//	                        cavsatd_* service metrics (requests, sheds,
//	                        timeouts, queue depth, cache hits/misses)
//	GET  /healthz          liveness, uptime, attached-instance count,
//	                        journal write/drop counters
//	GET  /debug/slo        availability and latency SLO attainment with
//	                        5m/1h burn rates
//	GET  /debug/trace      recent spans; ?trace=<id> a retained request
//	                        trace; ?list=1 the retention index;
//	                        /debug/journal wide events; /debug/pprof/*
//	                        profiling
//
// Load shedding: at most -max-inflight queries solve concurrently; up
// to -max-queue more wait at most -queue-wait for a slot; everything
// beyond that is rejected immediately with HTTP 429 and a Retry-After
// hint. Each request is bounded by -request-timeout (clients may lower
// it per request, never raise it).
//
// Request correlation: an incoming W3C traceparent header is adopted as
// the request's trace id (one is minted otherwise); the response echoes
// it in a Traceparent header and a trace_id JSON field, and the same id
// is stamped on the journal line, explain report and flight bundle of
// the solve. Slow (over -slo-latency-ms), errored and shed requests
// retain their full span buffer for /debug/trace?trace=<id>, plus a
// -trace-sample fraction of healthy ones (bounded by -trace-retain).
// /metrics labels cavsatd_requests_total and
// cavsatd_request_duration_seconds by tenant, route and outcome under a
// fixed cardinality cap, and /debug/slo reports attainment and burn
// rates against -slo-latency-ms and -slo-availability.
//
// Attached directories that hold a columnar snapshot (snapshot.bin,
// written by datagen -snapshot) are mmap'ed zero-copy instead of
// parsing CSV; the snapshot's content fingerprint is reported as
// data_version by /admin/instances.
//
// The result cache holds -cache-entries finished answers keyed by
// (query fingerprint, constraint fingerprint, instance version,
// snapshot data version, planner mode); identical concurrent queries
// coalesce into one solve.
//
// The -planner flag (default auto) routes rewritable queries through
// the SAT-free ConQuer-style executor and everything else through the
// solver; answers are identical on every route. Each response carries
// its route, and /metrics exposes cavsatd_route_total{route=...}
// counters that sum to the queries served (cached answers count under
// the route that originally computed them).
//
// The -dbgen tenant is the aggbench replay instance: -sf,
// -inconsistency and -seed default to the bench settings, so
// `aggbench -replay -target http://addr` verifies byte-identical
// answers against its own in-process run.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aggcavsat"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/server"
	"aggcavsat/internal/tpch"
)

// dataFlags collects repeatable -data name=dir attachments.
type dataFlags []struct{ name, dir string }

func (d *dataFlags) String() string {
	var parts []string
	for _, e := range *d {
		parts = append(parts, e.name+"="+e.dir)
	}
	return strings.Join(parts, ",")
}

func (d *dataFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=dir, got %q", v)
	}
	*d = append(*d, struct{ name, dir string }{name, dir})
	return nil
}

func main() {
	var data dataFlags
	listen := flag.String("listen", ":7878", "address to serve the query API and debug plane on")
	flag.Var(&data, "data", "attach a schema.txt + CSV directory as a named instance, name=dir (repeatable)")
	dbgen := flag.Bool("dbgen", false, "attach a generated TPC-H demo instance named 'demo'")
	sf := flag.Float64("sf", 0.001, "scale factor of the -dbgen instance (bench default)")
	inconsistency := flag.Float64("inconsistency", 10, "injected inconsistency percent of the -dbgen instance")
	seed := flag.Uint64("seed", 2022, "generator seed of the -dbgen instance")
	maxInflight := flag.Int("max-inflight", 4, "max concurrently solving queries")
	maxQueue := flag.Int("max-queue", 0, "max queries waiting for a solve slot (0 = 2×max-inflight, negative = no queue)")
	queueWait := flag.Duration("queue-wait", 5*time.Second, "max time a query may wait for a solve slot before a 429")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "default per-request deadline (clients may lower it)")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache capacity in answers (negative disables caching)")
	sloLatencyMS := flag.Int("slo-latency-ms", 250, "latency SLO target in milliseconds (requests answered within it count as good; drives /debug/slo and tail-based trace retention)")
	sloAvailability := flag.Float64("slo-availability", 0.999, "availability/latency SLO objective fraction in (0,1)")
	traceSample := flag.Float64("trace-sample", 0, "probability of retaining the trace of a healthy fast request (slow/errored/shed requests are always retained)")
	traceRetain := flag.Int("trace-retain", 0, "retained request traces backing /debug/trace?trace=<id> (0 = default)")
	journalPath := flag.String("journal", "", "append one wide-event JSON line per solve to this file")
	flightDir := flag.String("flight-dir", "", "write flight-recorder bundles for anomalous queries into this directory")
	slowQuery := flag.Duration("slow-query", 0, "queries slower than this dump a flight bundle even on success (0 = only errors/timeouts)")
	plannerMode := flag.String("planner", "auto", "query planner mode for every attached instance: auto (rewrite when possible, solver otherwise), force-sat, force-rewrite")
	solver := flag.String("solver", "maxhs", "MaxSAT algorithm: maxhs, rc2, lsu, external")
	external := flag.String("external-solver", "", "path to a MaxHS-compatible binary (solver=external)")
	parallel := flag.Int("parallel", 0, "solver worker-pool size per query (0 = GOMAXPROCS, 1 = sequential)")
	incremental := flag.Bool("incremental", true, "share a per-component hard-clause solver base across solve directions")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	if !*dbgen && len(data) == 0 {
		fatalIf(fmt.Errorf("nothing to serve: pass -dbgen and/or -data name=dir"))
	}

	pm, err := aggcavsat.ParsePlannerMode(*plannerMode)
	fatalIf(err)
	opts := aggcavsat.Options{
		ExternalSolverPath: *external,
		Parallelism:        *parallel,
		SlowQuery:          *slowQuery,
		DisableIncremental: !*incremental,
		Planner:            pm,
	}
	switch *solver {
	case "maxhs":
		opts.Solver = aggcavsat.SolverMaxHS
	case "rc2":
		opts.Solver = aggcavsat.SolverRC2
	case "lsu":
		opts.Solver = aggcavsat.SolverLSU
	case "external":
		opts.Solver = aggcavsat.SolverExternal
	default:
		fatalIf(fmt.Errorf("unknown solver %q", *solver))
	}
	if *flightDir != "" {
		opts.OnAnomaly = obsv.DumpDir(*flightDir)
	}

	cfg := server.Config{
		MaxInFlight:     *maxInflight,
		MaxQueue:        *maxQueue,
		QueueWait:       *queueWait,
		RequestTimeout:  *requestTimeout,
		CacheEntries:    *cacheEntries,
		Planner:         pm,
		SLOLatency:      time.Duration(*sloLatencyMS) * time.Millisecond,
		SLOAvailability: *sloAvailability,
		TraceSample:     *traceSample,
		TraceRetain:     *traceRetain,
		Metrics:         obsv.NewRegistry(),
		Tracer:          obsv.NewTracer(),
	}
	if *journalPath != "" {
		j, err := obsv.OpenJournal(*journalPath)
		fatalIf(err)
		cfg.Journal = j
		defer j.Close()
	}
	srv := server.New(cfg)

	if *dbgen {
		in, err := tpch.DemoInstance(*sf, *inconsistency, *seed)
		fatalIf(err)
		genOpts := opts
		genOpts.Metrics = cfg.Metrics
		genOpts.Journal = cfg.Journal
		sys, err := aggcavsat.Open(in, genOpts)
		fatalIf(err)
		t := srv.Attach("demo", "", sys, in, nil)
		logger.Info("attached demo instance", "facts", t.Facts, "relations", t.Relations,
			"sf", *sf, "inconsistency", *inconsistency, "seed", *seed)
	}
	for _, e := range data {
		t, err := srv.AttachDir(e.name, e.dir, opts)
		fatalIf(err)
		logger.Info("attached instance", "name", t.Name, "dir", t.Dir,
			"mode", t.Mode, "facts", t.Facts, "relations", t.Relations)
	}

	run, err := server.Start(*listen, srv)
	fatalIf(err)
	logger.Info("cavsatd serving", "addr", run.Addr(),
		"max_inflight", *maxInflight, "queue_wait", *queueWait,
		"request_timeout", *requestTimeout, "cache_entries", *cacheEntries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	if err := run.Close(); err != nil {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cavsatd:", err)
		os.Exit(1)
	}
}
