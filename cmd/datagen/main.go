// Command datagen materializes the evaluation datasets as CSV
// directories consumable by cmd/cavsat:
//
//	datagen -kind tpch    -sf 0.001 -inconsistency 10 -out ./tpch10
//	datagen -kind pdbench -sf 0.001 -instance 2       -out ./pd2
//	datagen -kind medigap -scale 0.25                 -out ./medigap
//
// A matching schema.txt (relations, keys, functional dependencies) is
// written next to the CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"aggcavsat/internal/db"
	"aggcavsat/internal/medigap"
	"aggcavsat/internal/pdbench"
	"aggcavsat/internal/schemafile"
	"aggcavsat/internal/tpch"
)

func main() {
	kind := flag.String("kind", "tpch", "dataset: tpch, pdbench, medigap")
	out := flag.String("out", "./data", "output directory")
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor (tpch, pdbench)")
	pct := flag.Float64("inconsistency", 10, "percent of key-violating tuples (tpch)")
	instance := flag.Int("instance", 1, "PDBench instance 1-4 (pdbench)")
	scale := flag.Float64("scale", 0.25, "Medigap scale (medigap)")
	seed := flag.Uint64("seed", 2022, "generator seed")
	snapshot := flag.Bool("snapshot", true, "also write a columnar snapshot (snapshot.bin) that cavsat/cavsatd mmap instead of parsing CSV")
	flag.Parse()

	var (
		in  *db.Instance
		fds []string
		err error
	)
	switch *kind {
	case "tpch":
		base := tpch.Generate(*sf, *seed)
		in, err = tpch.Inject(base, tpch.InjectOptions{
			Percent: *pct, MinGroup: 2, MaxGroup: 7, Seed: *seed + 1,
		})
	case "pdbench":
		in, _, err = pdbench.Generate(*sf, *instance, *seed)
	case "medigap":
		in, err = medigap.Generate(*scale, *seed)
		fds = []string{
			"fd OBS orgID -> orgName",
			"fd PBS addr city state_abbrev -> zip",
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	fatalIf(err)

	fatalIf(in.SaveDir(*out))
	fatalIf(writeSchema(in, filepath.Join(*out, "schema.txt"), fds))
	if *snapshot {
		snapPath := filepath.Join(*out, db.SnapshotFileName)
		fatalIf(db.SaveSnapshot(in, snapPath))
		if fi, err := os.Stat(snapPath); err == nil {
			fmt.Printf("wrote columnar snapshot %s (%d bytes)\n", snapPath, fi.Size())
		}
	}

	var total int
	for _, rs := range in.Schema().Relations() {
		total += in.RelSize(rs.Name)
	}
	fmt.Printf("wrote %d tuples across %d relations to %s\n",
		total, len(in.Schema().Relations()), *out)
	for _, st := range in.KeyInconsistency() {
		if st.ViolatingFacts > 0 {
			fmt.Printf("  %-10s %6d tuples, %5.2f%% violating keys\n", st.Rel, st.Facts, st.Percent())
		}
	}
}

func writeSchema(in *db.Instance, path string, fds []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return schemafile.Write(f, in.Schema(), fds)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
