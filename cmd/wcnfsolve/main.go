// Command wcnfsolve is a standalone Weighted Partial MaxSAT solver for
// DIMACS WCNF files, speaking the MaxSAT-evaluation output convention
// ("o <cost>", "s OPTIMUM FOUND" / "s UNSATISFIABLE", "v <literals>").
//
//	wcnfsolve [-alg maxhs|rc2|lsu] [-timeout 30s] problem.wcnf
//
// With -incremental (the default) the hard clauses are loaded into one
// solver base and every algorithm run — including the MaxHS→RC2
// fallback — starts from a clone of it; -incremental=false restores the
// legacy rebuild-per-run path.
//
// It doubles as a drop-in "external solver" for aggcavsat itself
// (Options.ExternalSolverPath), which closes the loop on the paper's
// process-level MaxHS integration without shipping a binary. With
// -timeout the search is interrupted cooperatively at the deadline and
// the command exits with an error instead of an optimum.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"aggcavsat/internal/cnf"
	"aggcavsat/internal/maxsat"
)

func main() {
	alg := flag.String("alg", "maxhs", "algorithm: maxhs, rc2, lsu")
	incremental := flag.Bool("incremental", true, "load the hard clauses once and serve every run (including the MaxHS fallback) from clones (false = legacy rebuild-per-run path)")
	progress := flag.Bool("progress", false, "print periodic progress lines (stderr)")
	progressEvery := flag.Int64("progress-every", maxsat.DefaultProgressEvery, "conflicts between progress lines")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the solve, e.g. 30s (0 = none)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wcnfsolve [-alg maxhs|rc2|lsu] [-progress] [-timeout 30s] problem.wcnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	fatalIf(err)
	formula, err := cnf.ReadWCNF(f)
	f.Close()
	fatalIf(err)

	opts := maxsat.Options{}
	switch *alg {
	case "maxhs":
		opts.Algorithm = maxsat.AlgMaxHS
	case "rc2":
		opts.Algorithm = maxsat.AlgRC2
	case "lsu":
		opts.Algorithm = maxsat.AlgLSU
	default:
		fatalIf(fmt.Errorf("unknown algorithm %q", *alg))
	}
	if *progress {
		opts.ProgressEvery = *progressEvery
		opts.Progress = progressPrinter()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var res maxsat.Result
	if *incremental {
		// One shared solver base: the MaxHS→RC2 fallback (and any other
		// repeated run) forks a clone instead of re-adding every hard
		// clause. Identical optimum either way.
		res, err = maxsat.NewInstance(formula, nil, opts).SolveMin(ctx)
	} else {
		res, err = maxsat.SolveContext(ctx, formula, opts)
	}
	fatalIf(err)

	if !res.Satisfiable {
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	}
	fmt.Printf("c sat calls: %d, conflicts: %d\n", res.SATCalls, res.Conflicts)
	fmt.Printf("o %d\n", res.FalsifiedWeight)
	fmt.Println("s OPTIMUM FOUND")
	var sb strings.Builder
	sb.WriteString("v")
	for v := 1; v <= formula.NumVars(); v++ {
		lit := v
		if !res.Model[v] {
			lit = -v
		}
		fmt.Fprintf(&sb, " %d", lit)
	}
	sb.WriteString(" 0")
	fmt.Println(sb.String())
	os.Exit(30)
}

// progressPrinter returns a callback rendering MiniSat-style periodic
// progress lines on stderr: one row per report, with the bound bracket
// [lb, ub] on the optimum falsified weight.
func progressPrinter() maxsat.ProgressFunc {
	fmt.Fprintln(os.Stderr, "c ============================[ search progress ]=============================")
	fmt.Fprintln(os.Stderr, "c |     phase    | sat calls | conflicts |   learnt |  trail |      lb |      ub |")
	fmt.Fprintln(os.Stderr, "c ============================================================================")
	return func(p maxsat.ProgressInfo) {
		fmt.Fprintf(os.Stderr, "c | %-12s | %9d | %9d | %8d | %6d | %7s | %7s |\n",
			p.Phase, p.SATCalls, p.Conflicts, p.LearntLive, p.TrailDepth,
			bound(p.LowerBound), bound(p.UpperBound))
	}
}

func bound(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wcnfsolve:", err)
		os.Exit(1)
	}
}
