// Command cavsat computes range consistent answers of an aggregation
// SQL query over a CSV-backed database, the end-user surface of the
// AggCAvSAT system.
//
// The database lives in a directory with one <relation>.csv per relation
// plus a schema.txt describing relations and constraints:
//
//	# relation <name> (<attr>:<int|float|string> ...) [key <attr> ...]
//	relation Cust (CID:string NAME:string CITY:string) key CID
//	relation Acc  (ACCID:string TYPE:string CITY:string BAL:int) key ACCID
//	# optional functional dependencies (switches the engine to denial
//	# constraints):
//	fd Cust CID -> NAME
//
// When the directory also holds a columnar snapshot (snapshot.bin,
// written by datagen -snapshot), the facts are mmap'ed zero-copy from
// it instead of parsing the CSV files; schema.txt still supplies the
// constraints and is verified compatible with the snapshot's schema.
//
// Example:
//
//	cavsat -data ./bankdir "SELECT CITY, COUNT(*) FROM Cust GROUP BY CITY"
//
// Observability:
//
//	-stats            per-phase breakdown table on stderr
//	-explain          per-solve explain report on stderr: code paths
//	                  taken (mode, front end, solver route), cache
//	                  outcomes, per-component CNF/solve breakdown; its
//	                  phase totals are the same counters -stats prints
//	-explain-json     the explain report as JSON instead of a table
//	-journal f.jsonl  append one wide-event JSON line per solve (bounded
//	                  non-blocking writer; decode with
//	                  `aggbench -journal-read`)
//	-trace out.json   Chrome trace-event file (chrome://tracing, Perfetto)
//	-progress         periodic solver progress on stderr
//	-metrics out.prom Prometheus text exposition of the session metrics
//	-listen addr      serve /metrics, /debug/trace, /debug/pprof and
//	                  /healthz on addr (e.g. localhost:9090) while the
//	                  query runs
//	-flight-dir dir   write a flight-recorder bundle (recent solver
//	                  events + metrics) into dir when the query times
//	                  out, fails, or exceeds -slow-query
//	-slow-query D     treat queries slower than D as anomalies worth a
//	                  flight dump (e.g. 5s; 0 = only errors/timeouts)
//	-v                debug logging (log/slog) on stderr
//
// Planner:
//
//	-planner auto     route rewritable queries through the SAT-free
//	                  ConQuer-style rewriting, the rest through the
//	                  solver (default). force-sat always uses the
//	                  solver; force-rewrite fails on non-rewritable
//	                  queries instead of falling back. Answers are
//	                  identical on every route; -explain shows which
//	                  route answered and why.
//
// Concurrency and timeouts:
//
//	-parallel N       worker-pool size for independent groups/components
//	                  (0 = GOMAXPROCS, 1 = sequential; answers identical)
//	-incremental=false  disable the shared per-component hard-clause
//	                  solver base and run the legacy one-solver-per-run
//	                  path (answers identical; for comparison/debugging)
//	-timeout D        wall-clock bound for the whole query (e.g. 30s);
//	                  on expiry the solve is interrupted and the command
//	                  exits with a timeout error
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"aggcavsat"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/schemafile"
)

func main() {
	dataDir := flag.String("data", ".", "directory with schema.txt and <relation>.csv files")
	plannerMode := flag.String("planner", "auto", "query planner mode: auto (rewrite when possible, solver otherwise), force-sat, force-rewrite")
	solver := flag.String("solver", "maxhs", "MaxSAT algorithm: maxhs, rc2, lsu, external")
	external := flag.String("external-solver", "", "path to a MaxHS-compatible binary (solver=external)")
	stats := flag.Bool("stats", false, "print a per-phase statistics table")
	explain := flag.Bool("explain", false, "print a per-solve explain report (code paths, caches, components)")
	explainJSON := flag.Bool("explain-json", false, "print the explain report as JSON")
	journalPath := flag.String("journal", "", "append one wide-event JSON line per solve to this file")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file of the query")
	progress := flag.Bool("progress", false, "print periodic solver progress")
	progressEvery := flag.Int64("progress-every", 0, "conflicts between progress reports (0 = solver default)")
	metricsOut := flag.String("metrics", "", "write the Prometheus text exposition of the session metrics ('-' for stderr)")
	listen := flag.String("listen", "", "serve /metrics, /debug/trace, /debug/pprof and /healthz on this address while the query runs")
	flightDir := flag.String("flight-dir", "", "write flight-recorder bundles for anomalous queries into this directory")
	slowQuery := flag.Duration("slow-query", 0, "queries slower than this dump a flight bundle even on success (0 = only errors/timeouts)")
	parallel := flag.Int("parallel", 0, "solver worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	incremental := flag.Bool("incremental", true, "share a per-component hard-clause solver base across solve directions (false = legacy one-solver-per-run path)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the query, e.g. 30s (0 = none)")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cavsat [-data dir] \"SELECT ...\"")
		os.Exit(2)
	}
	sql := flag.Arg(0)

	sf, err := os.Open(filepath.Join(*dataDir, "schema.txt"))
	fatalIf(err)
	parsed, err := schemafile.Read(sf)
	sf.Close()
	fatalIf(err)
	loadStart := time.Now()
	in, snap, err := aggcavsat.OpenDir(parsed.Schema, *dataDir)
	fatalIf(err)
	if snap != nil {
		defer snap.Close()
		logger.Debug("snapshot mapped", "path", snap.Path(),
			"bytes", snap.SizeBytes(), "data_version", fmt.Sprintf("%016x", snap.DataVersion()),
			"facts", in.NumFacts(), "elapsed", time.Since(loadStart))
	} else {
		logger.Debug("database loaded", "dir", *dataDir, "facts", in.NumFacts(), "elapsed", time.Since(loadStart))
	}

	pm, err := aggcavsat.ParsePlannerMode(*plannerMode)
	fatalIf(err)
	opts := aggcavsat.Options{
		DenialConstraints:  parsed.FDs,
		ExternalSolverPath: *external,
		Parallelism:        *parallel,
		Timeout:            *timeout,
		DisableIncremental: !*incremental,
		Planner:            pm,
	}
	switch *solver {
	case "maxhs":
		opts.Solver = aggcavsat.SolverMaxHS
	case "rc2":
		opts.Solver = aggcavsat.SolverRC2
	case "lsu":
		opts.Solver = aggcavsat.SolverLSU
	case "external":
		opts.Solver = aggcavsat.SolverExternal
	default:
		fatalIf(fmt.Errorf("unknown solver %q", *solver))
	}
	if *progress || *verbose {
		opts.ProgressEvery = *progressEvery
		opts.Progress = func(p aggcavsat.SolverProgress) {
			logger.Info("solver progress",
				"alg", p.Algorithm.String(), "phase", p.Phase, "iter", p.Iteration,
				"sat_calls", p.SATCalls, "conflicts", p.Conflicts,
				"learnt", p.LearntLive, "trail", p.TrailDepth,
				"lb", bound(p.LowerBound), "ub", bound(p.UpperBound))
		}
	}
	var metrics *obsv.Registry
	if *metricsOut != "" || *listen != "" {
		metrics = obsv.NewRegistry()
		opts.Metrics = metrics
	}
	if *flightDir != "" {
		opts.SlowQuery = *slowQuery
		opts.OnAnomaly = obsv.DumpDir(*flightDir)
	}
	opts.Explain = *explain || *explainJSON
	var journal *obsv.Journal
	if *journalPath != "" {
		journal, err = obsv.OpenJournal(*journalPath)
		fatalIf(err)
		opts.Journal = journal
		defer func() {
			journal.Close()
			logger.Debug("journal closed", "path", journal.Path(),
				"written", journal.Written(), "dropped", journal.Dropped())
		}()
	}
	sys, err := aggcavsat.Open(in, opts)
	fatalIf(err)

	ctx := context.Background()
	var tracer *obsv.Tracer
	if *trace != "" || *listen != "" {
		tracer = obsv.NewTracer()
		ctx = obsv.WithTracer(ctx, tracer)
	}
	if *listen != "" {
		srv, err := obsv.Serve(*listen, metrics, tracer, journal)
		fatalIf(err)
		defer srv.Close()
		logger.Debug("debug server listening", "addr", srv.Addr())
	}

	res, err := sys.QueryContext(ctx, sql)
	fatalIf(err)

	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		var cells []string
		for _, v := range row.Key {
			cells = append(cells, v.String())
		}
		for _, rng := range row.Ranges {
			cells = append(cells, aggcavsat.FormatRange(rng))
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if *stats {
		printStats(res.Stats)
	}
	for _, ex := range res.Explains {
		if *explainJSON {
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			fatalIf(enc.Encode(ex))
			continue
		}
		fmt.Fprintln(os.Stderr)
		fatalIf(ex.WriteTable(os.Stderr))
	}
	if tracer != nil && *trace != "" {
		out, err := os.Create(*trace)
		fatalIf(err)
		fatalIf(tracer.WriteChromeTrace(out))
		fatalIf(out.Close())
		logger.Debug("trace written", "path", *trace, "spans", tracer.Len(), "dropped", tracer.Dropped())
	}
	if metrics != nil && *metricsOut != "" {
		w := os.Stderr
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			fatalIf(err)
			defer f.Close()
			w = f
		}
		fatalIf(metrics.WritePrometheus(w))
		if tracer != nil {
			fatalIf(tracer.WritePrometheus(w))
		}
	}
}

// printStats renders the per-phase breakdown table on stderr.
func printStats(st aggcavsat.Stats) {
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	total := st.RewriteTime + st.WitnessTime + st.ConstraintTime + st.EncodeTime + st.SolveTime
	fmt.Fprintf(tw, "phase\ttime\t\n")
	if st.RewriteTime > 0 {
		fmt.Fprintf(tw, "rewrite\t%v\t\n", st.RewriteTime)
	}
	fmt.Fprintf(tw, "witness\t%v\t\n", st.WitnessTime)
	fmt.Fprintf(tw, "constraint\t%v\t\n", st.ConstraintTime)
	fmt.Fprintf(tw, "encode\t%v\t\n", st.EncodeTime)
	fmt.Fprintf(tw, "solve\t%v\t\n", st.SolveTime)
	fmt.Fprintf(tw, "total\t%v\t\n", total)
	fmt.Fprintf(tw, "\t\t\n")
	fmt.Fprintf(tw, "SAT calls\t%d\t\n", st.SATCalls)
	fmt.Fprintf(tw, "MaxSAT runs\t%d\t\n", st.MaxSATRuns)
	fmt.Fprintf(tw, "consistent-part skips\t%d\t\n", st.ConsistentPartSkips)
	fmt.Fprintf(tw, "largest CNF\t%d vars / %d clauses\t\n", st.MaxVars, st.MaxClauses)
	fmt.Fprintf(tw, "alloc (witness/encode/solve)\t%s / %s / %s\t\n",
		mib(st.WitnessAllocBytes), mib(st.EncodeAllocBytes), mib(st.SolveAllocBytes))
	fmt.Fprintf(tw, "live heap / GC cycles\t%s / %d\t\n", mib(st.HeapBytes), st.GCCycles)
	tw.Flush()
}

// mib renders a byte count in MiB with two decimals.
func mib(b int64) string {
	return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
}

func bound(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cavsat:", err)
		os.Exit(1)
	}
}
