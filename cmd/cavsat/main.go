// Command cavsat computes range consistent answers of an aggregation
// SQL query over a CSV-backed database, the end-user surface of the
// AggCAvSAT system.
//
// The database lives in a directory with one <relation>.csv per relation
// plus a schema.txt describing relations and constraints:
//
//	# relation <name> (<attr>:<int|float|string> ...) [key <attr> ...]
//	relation Cust (CID:string NAME:string CITY:string) key CID
//	relation Acc  (ACCID:string TYPE:string CITY:string BAL:int) key ACCID
//	# optional functional dependencies (switches the engine to denial
//	# constraints):
//	fd Cust CID -> NAME
//
// Example:
//
//	cavsat -data ./bankdir "SELECT CITY, COUNT(*) FROM Cust GROUP BY CITY"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aggcavsat"
	"aggcavsat/internal/schemafile"
)

func main() {
	dataDir := flag.String("data", ".", "directory with schema.txt and <relation>.csv files")
	solver := flag.String("solver", "maxhs", "MaxSAT algorithm: maxhs, rc2, lsu, external")
	external := flag.String("external-solver", "", "path to a MaxHS-compatible binary (solver=external)")
	stats := flag.Bool("stats", false, "print solving statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cavsat [-data dir] \"SELECT ...\"")
		os.Exit(2)
	}
	sql := flag.Arg(0)

	sf, err := os.Open(filepath.Join(*dataDir, "schema.txt"))
	fatalIf(err)
	parsed, err := schemafile.Read(sf)
	sf.Close()
	fatalIf(err)
	in, err := aggcavsat.LoadDir(parsed.Schema, *dataDir)
	fatalIf(err)

	opts := aggcavsat.Options{DenialConstraints: parsed.FDs, ExternalSolverPath: *external}
	switch *solver {
	case "maxhs":
		opts.Solver = aggcavsat.SolverMaxHS
	case "rc2":
		opts.Solver = aggcavsat.SolverRC2
	case "lsu":
		opts.Solver = aggcavsat.SolverLSU
	case "external":
		opts.Solver = aggcavsat.SolverExternal
	default:
		fatalIf(fmt.Errorf("unknown solver %q", *solver))
	}
	sys, err := aggcavsat.Open(in, opts)
	fatalIf(err)

	res, err := sys.Query(sql)
	fatalIf(err)

	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		var cells []string
		for _, v := range row.Key {
			cells = append(cells, v.String())
		}
		for _, rng := range row.Ranges {
			cells = append(cells, aggcavsat.FormatRange(rng))
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr,
			"constraints %v, witnesses %v, encode %v, solve %v, %d SAT calls, %d MaxSAT runs, largest CNF %d vars / %d clauses\n",
			st.ConstraintTime, st.WitnessTime, st.EncodeTime, st.SolveTime,
			st.SATCalls, st.MaxSATRuns, st.MaxVars, st.MaxClauses)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cavsat:", err)
		os.Exit(1)
	}
}
