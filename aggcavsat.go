// Package aggcavsat computes the range consistent answers of SQL
// aggregation queries (COUNT(*), COUNT, SUM, MIN, MAX, with or without
// GROUP BY and DISTINCT) over inconsistent relational databases, by
// reduction to Weighted Partial MaxSAT — a from-scratch Go
// implementation of the AggCAvSAT system (Dixit & Kolaitis, ICDE 2022).
//
// A database is a set of facts over a schema with integrity constraints:
// either one key per relation, or an arbitrary set of denial
// constraints. When the data violates the constraints, a *repair* is a
// maximal consistent subset of the facts. The range consistent answer of
// an aggregation query is the tightest interval [glb, lub] containing
// the query's value over every repair; for grouped queries, a group is
// reported only if it appears in every repair.
//
// Basic use:
//
//	schema := aggcavsat.NewSchema()
//	// … declare relations, load facts …
//	sys, err := aggcavsat.Open(instance, aggcavsat.Options{})
//	res, err := sys.Query(`SELECT CITY, SUM(BAL) FROM Accounts GROUP BY CITY`)
//	for _, row := range res.Rows {
//	    fmt.Println(row.Key, row.Ranges) // e.g. [LA] [[900, 2200]]
//	}
//
// The heavy lifting lives in the internal packages: internal/sat (CDCL
// solver), internal/maxsat (core-guided and linear WPMaxSAT),
// internal/cq (conjunctive-query evaluation and witness bags),
// internal/core (the paper's reductions), internal/sqlparse (the SQL
// front end). This package is the stable façade over them.
package aggcavsat

import (
	"context"
	"fmt"
	"sort"
	"time"

	"aggcavsat/internal/constraints"
	"aggcavsat/internal/core"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/maxsat"
	"aggcavsat/internal/obsv"
	"aggcavsat/internal/planner"
	"aggcavsat/internal/sqlparse"
)

// Re-exported building blocks, so most programs only import this
// package.
type (
	// Schema declares relations and their key constraints.
	Schema = db.Schema
	// RelationSchema describes one relation.
	RelationSchema = db.RelationSchema
	// Attribute is one column.
	Attribute = db.Attribute
	// Instance is a (possibly inconsistent) set of facts.
	Instance = db.Instance
	// Tuple is one row of values.
	Tuple = db.Tuple
	// Value is a dynamically typed scalar.
	Value = db.Value
	// DenialConstraint forbids a pattern of co-occurring tuples.
	DenialConstraint = constraints.DC
	// AggQuery is the algebraic form of an aggregation query.
	AggQuery = cq.AggQuery
	// UCQ is a union of conjunctive queries.
	UCQ = cq.UCQ
	// Range is a range consistent answer interval.
	Range = core.Range
	// Stats instruments a computation (encode/solve split, CNF sizes,
	// SAT calls). It is a typed view over the obsv metric snapshot of
	// the call (core.StatsFromSnapshot).
	Stats = core.Stats
	// Tracer records hierarchical spans; install one on a context with
	// WithTracer and pass the context to QueryContext.
	Tracer = obsv.Tracer
	// SolverProgress is one progress report from the MaxSAT solver.
	SolverProgress = maxsat.ProgressInfo
	// FlightBundle is the self-contained anomaly dump delivered to
	// Options.OnAnomaly: the flight-recorder event ring, the call's
	// metric snapshot, and the resource delta of the solve.
	FlightBundle = obsv.Bundle
	// Explain is the per-solve report assembled under Options.Explain:
	// the code paths taken (mode, front end, solver route), cache
	// outcomes, and the per-component CNF/solve breakdown. Its Stats
	// field is the same snapshot projection as Result.Stats, so the two
	// views reconcile exactly.
	Explain = core.Explain
	// Journal is the bounded, non-blocking wide-event writer: install
	// one via Options.Journal and every engine call appends one JSON
	// line (obsv.OpenJournal / obsv.NewJournal construct it).
	Journal = obsv.Journal
	// JournalEntry is one decoded journal line.
	JournalEntry = obsv.JournalEntry
	// Snapshot is an mmap-backed columnar database file handle; its
	// Instance is frozen and reads straight out of the mapping.
	Snapshot = db.Snapshot
)

// OpenJournal opens (appending) a query journal at path.
func OpenJournal(path string) (*Journal, error) { return obsv.OpenJournal(path) }

// ReadJournalFile decodes every entry of a journal file.
func ReadJournalFile(path string) ([]JournalEntry, error) { return obsv.ReadJournalFile(path) }

// Typed failure modes, re-exported for errors.Is matching:
// ErrTimeout reports a cancelled or expired context (Options.Timeout or
// a caller deadline); ErrBudget reports an exhausted solver budget.
var (
	ErrTimeout = core.ErrTimeout
	ErrBudget  = core.ErrBudget
)

// NewTracer creates an empty span tracer.
func NewTracer() *Tracer { return obsv.NewTracer() }

// WithTracer installs a tracer on a context; every span recorded while
// answering a query started under that context nests below the caller.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return obsv.WithTracer(ctx, tr)
}

// Value constructors and kinds.
var (
	Null  = db.Null
	Int   = db.Int
	Float = db.Float
	Str   = db.Str
)

// Kind constants for attribute declarations.
const (
	KindInt    = db.KindInt
	KindFloat  = db.KindFloat
	KindString = db.KindString
)

// NewSchema creates an empty schema.
func NewSchema() *Schema { return db.NewSchema() }

// NewInstance creates an empty instance over the schema.
func NewInstance(s *Schema) *Instance { return db.NewInstance(s) }

// LoadDir loads an instance from a directory of <relation>.csv files.
func LoadDir(s *Schema, dir string) (*Instance, error) { return db.LoadDir(s, dir) }

// OpenDir loads a data directory like LoadDir, but maps a columnar
// snapshot (snapshot.bin, written by datagen -snapshot) zero-copy when
// one is present instead of parsing CSV. The Snapshot is non-nil
// exactly when the snapshot path was taken; Close it after use.
func OpenDir(s *Schema, dir string) (*Instance, *Snapshot, error) { return db.OpenDir(s, dir) }

// FD builds denial constraints for the functional dependency lhs → rhs
// on the relation.
func FD(rs *RelationSchema, lhs []string, rhs ...string) ([]DenialConstraint, error) {
	return constraints.FD(rs, lhs, rhs...)
}

// SolverAlgorithm selects the MaxSAT strategy.
type SolverAlgorithm = maxsat.Algorithm

// PlannerMode selects the query planner's routing policy between the
// WPMaxSAT reduction and the SAT-free rewriting fast path.
type PlannerMode = planner.Mode

// Planner routing policies.
const (
	// PlannerForceSAT routes every query through the WPMaxSAT reduction
	// (the pre-planner behavior; the zero value).
	PlannerForceSAT = planner.ModeSAT
	// PlannerAuto routes rewritable queries through the compiled
	// ConQuer-style rewriting and everything else (plus run-time
	// rejections) through the solver. Answers are identical either way.
	PlannerAuto = planner.ModeAuto
	// PlannerForceRewrite requires the rewriting: non-rewritable queries
	// fail with planner.ErrRewriteUnavailable instead of falling back.
	PlannerForceRewrite = planner.ModeRewrite
)

// ParsePlannerMode parses a planner mode name ("auto", "force-sat",
// "force-rewrite"; "sat" and "rewrite" are accepted shorthands).
func ParsePlannerMode(s string) (PlannerMode, error) { return planner.ParseMode(s) }

// MaxSAT solving strategies.
const (
	// SolverMaxHS is implicit-hitting-set MaxSAT, as in the MaxHS solver
	// the paper deploys (default).
	SolverMaxHS = maxsat.AlgMaxHS
	// SolverRC2 is core-guided MaxSAT.
	SolverRC2 = maxsat.AlgRC2
	// SolverLSU is linear solution-improving search.
	SolverLSU = maxsat.AlgLSU
	// SolverExternal shells out to a MaxHS-compatible binary.
	SolverExternal = maxsat.AlgExternal
)

// Options configures a System.
type Options struct {
	// DenialConstraints switches the system from per-relation key
	// constraints (the default, taken from the schema) to an explicit
	// denial-constraint set (Reduction V.1).
	DenialConstraints []DenialConstraint
	// Solver selects the MaxSAT algorithm; SolverRC2 by default.
	Solver SolverAlgorithm
	// ExternalSolverPath is the MaxHS-compatible binary for
	// SolverExternal.
	ExternalSolverPath string
	// Parallelism bounds the worker pool that solves independent
	// groups/components concurrently; 0 means GOMAXPROCS, 1 forces
	// sequential solving. Answers are identical at every setting.
	Parallelism int
	// Timeout, when positive, bounds the wall-clock time of every query;
	// on expiry the running SAT searches are interrupted and the call
	// returns an error matching ErrTimeout. A deadline on the context
	// passed to QueryContext has the same effect.
	Timeout time.Duration
	// Progress, when non-nil, receives periodic solver progress reports
	// (every ProgressEvery conflicts, plus bound-change milestones).
	Progress func(SolverProgress)
	// ProgressEvery is the conflict interval between periodic reports;
	// 0 means the solver default.
	ProgressEvery int64
	// Metrics, when non-nil, accumulates every query's metrics into a
	// session-wide registry (obsv Prometheus exposition).
	Metrics *obsv.Registry
	// SlowQuery, when positive, marks any query slower than this as an
	// anomaly: its flight-recorder bundle is delivered to OnAnomaly even
	// though the query succeeded.
	SlowQuery time.Duration
	// OnAnomaly, when non-nil, enables the per-query flight recorder and
	// receives a dump bundle whenever a query times out, exhausts its
	// budget, fails, or exceeds SlowQuery. Called synchronously at the
	// end of the query; obsv.DumpDir builds a ready-made file sink.
	OnAnomaly func(*FlightBundle)
	// FlightEvents bounds the flight-recorder ring; 0 means
	// obsv.DefaultFlightEvents.
	FlightEvents int
	// DisableIncremental forces the legacy solve path: one fresh SAT
	// solver per MaxSAT run, with an explicit negated formula for the
	// upper-bound direction, instead of cloning a shared per-component
	// hard-clause base. Answers are identical either way; this is the
	// escape hatch behind the CLI -incremental flag. External solvers
	// always take the legacy path.
	DisableIncremental bool
	// Explain attaches a per-solve Explain report (code paths, cache
	// outcomes, per-component breakdown) to every query result.
	Explain bool
	// Journal, when non-nil, receives one wide-event JSON line per
	// engine call. Appends never block a solve: the journal sheds lines
	// when its writer lags (and counts the drops).
	Journal *Journal
	// Planner selects the routing policy between the WPMaxSAT reduction
	// and the SAT-free rewriting fast path. The zero value
	// (PlannerForceSAT) preserves the pre-planner behavior; servers and
	// CLIs default to PlannerAuto explicitly.
	Planner PlannerMode
}

// System answers queries over one instance.
type System struct {
	in      *db.Instance
	engine  *core.Engine
	planner PlannerMode
}

// PlannerMode returns the routing policy the system was opened with.
func (s *System) PlannerMode() PlannerMode { return s.planner }

// Open prepares a system over the instance.
func Open(in *Instance, opts Options) (*System, error) {
	engOpts := core.Options{
		Mode: core.KeysMode,
		MaxSAT: maxsat.Options{
			Algorithm:     opts.Solver,
			SolverPath:    opts.ExternalSolverPath,
			Progress:      opts.Progress,
			ProgressEvery: opts.ProgressEvery,
		},
		Parallelism:        opts.Parallelism,
		Timeout:            opts.Timeout,
		Metrics:            opts.Metrics,
		SlowQuery:          opts.SlowQuery,
		OnAnomaly:          opts.OnAnomaly,
		FlightEvents:       opts.FlightEvents,
		DisableIncremental: opts.DisableIncremental,
		Explain:            opts.Explain,
		Journal:            opts.Journal,
		Planner:            opts.Planner,
	}
	if len(opts.DenialConstraints) > 0 {
		engOpts.Mode = core.DCMode
		engOpts.DCs = opts.DenialConstraints
	}
	eng, err := core.New(in, engOpts)
	if err != nil {
		return nil, err
	}
	return &System{in: in, engine: eng, planner: opts.Planner}, nil
}

// Row is one group of a query result: the grouping key (empty for
// scalar queries) and one range per aggregate in the SELECT list.
type Row struct {
	Key    Tuple
	Ranges []Range
}

// Result is the outcome of Query.
type Result struct {
	// Columns names the result columns: grouping columns first, then
	// one per aggregate.
	Columns []string
	Rows    []Row
	Stats   Stats
	// PartialGroups counts groups dropped from Rows because some
	// aggregate in the SELECT list had no consistent answer for them: a
	// multi-aggregate row is a consistent answer of the statement only
	// when every cell is, so groups on which the per-aggregate answer
	// sets diverge are removed rather than padded with a zero-valued
	// interval that would render as a real answer.
	PartialGroups int
	// Explains holds one per-solve report per aggregate in the SELECT
	// list, in order, when Options.Explain is set.
	Explains []*Explain
	// Route summarizes which executor answered the statement's
	// aggregates: "rewrite" (the planner's SAT-free fast path), "sat"
	// (the WPMaxSAT reduction), or "mixed" when they differ.
	Route string
}

// Query parses an aggregation-SQL statement, computes the range
// consistent answers of every aggregate in its SELECT list, and applies
// the statement's ORDER BY and TOP clauses to the consistent groups.
func (s *System) Query(sql string) (*Result, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a context that may carry a Tracer: the
// whole statement is wrapped in a "query" span, with a "sql.parse" child
// and one "query.range_answers" subtree per aggregate.
func (s *System) QueryContext(ctx context.Context, sql string) (*Result, error) {
	ctx, sp := obsv.StartSpan(ctx, "query")
	defer sp.End()
	// Journal lines of this statement carry the SQL text, not the
	// rendered algebraic query, so journals read like the user's input —
	// unless the caller already labeled the context (a server stamping
	// its tenant/instance, a replay stamping the workload query name).
	if obsv.QueryLabelFrom(ctx) == "" {
		ctx = obsv.WithQueryLabel(ctx, sql)
	}
	_, psp := obsv.StartSpan(ctx, "sql.parse")
	tr, err := sqlparse.ParseAndTranslate(sql, s.in.Schema())
	psp.End()
	if err != nil {
		return nil, err
	}
	return s.run(ctx, tr)
}

func (s *System) run(ctx context.Context, tr *sqlparse.Translation) (*Result, error) {
	res := &Result{}
	for _, g := range tr.GroupCols {
		res.Columns = append(res.Columns, g.String())
	}
	type keyed struct {
		key    Tuple
		ranges []Range
		filled int // aggregates that reported this group
	}
	var rows []keyed
	index := map[string]int{}
	positions := []int{}
	for ai, agg := range tr.Aggs {
		res.Columns = append(res.Columns, agg.Item.String())
		rep, err := s.engine.RangeAnswersContext(ctx, agg.Query)
		if err != nil {
			return nil, err
		}
		res.Stats = accumulate(res.Stats, rep.Stats)
		if rep.Explain != nil {
			res.Explains = append(res.Explains, rep.Explain)
		}
		switch {
		case ai == 0:
			res.Route = rep.Route
		case res.Route != rep.Route:
			res.Route = "mixed"
		}
		for _, a := range rep.Answers {
			if len(positions) != len(a.Key) {
				positions = positions[:0]
				for i := range a.Key {
					positions = append(positions, i)
				}
			}
			k := a.Key.Key(positions)
			ri, ok := index[k]
			if !ok {
				ri = len(rows)
				index[k] = ri
				rows = append(rows, keyed{key: a.Key, ranges: make([]Range, len(tr.Aggs))})
			}
			rows[ri].ranges[ai] = a.Range
			rows[ri].filled++
		}
	}
	// A group absent from some aggregate's answer set has no consistent
	// value for that cell; keeping the row would emit a zero Range (both
	// endpoints null) that reads like a real interval. Such groups are
	// dropped and counted instead: the statement's consistent answers
	// are the groups every aggregate agrees on.
	if len(tr.Aggs) > 1 {
		complete := rows[:0]
		for _, r := range rows {
			if r.filled == len(tr.Aggs) {
				complete = append(complete, r)
			} else {
				res.PartialGroups++
			}
		}
		rows = complete
	}
	// Order: ORDER BY keys, then the full group key for determinism.
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range tr.OrderBy {
			c := rows[i].key[k.GroupIndex].Compare(rows[j].key[k.GroupIndex])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return rows[i].key.Compare(rows[j].key) < 0
	})
	if tr.Top > 0 && len(rows) > tr.Top {
		rows = rows[:tr.Top]
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, Row{Key: r.key, Ranges: r.ranges})
	}
	return res, nil
}

// RangeAnswers computes the range consistent answers of an algebraic
// aggregation query (the non-SQL entry point).
func (s *System) RangeAnswers(q AggQuery) ([]GroupAnswer, Stats, error) {
	rep, err := s.engine.RangeAnswers(q)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]GroupAnswer, len(rep.Answers))
	for i, a := range rep.Answers {
		out[i] = GroupAnswer{Key: a.Key, Range: a.Range}
	}
	return out, rep.Stats, nil
}

// GroupAnswer pairs a grouping key with its range.
type GroupAnswer = core.GroupAnswer

// ConsistentAnswers computes CONS(q) of a union of conjunctive queries:
// the answers certain to appear regardless of how the database is
// repaired.
func (s *System) ConsistentAnswers(u UCQ) ([]Tuple, error) {
	ans, _, err := s.engine.ConsistentAnswers(u)
	return ans, err
}

// FormatRange renders an interval like "[900, 2200]" ("1500" when the
// endpoints agree). Null endpoints render as documented tokens rather
// than leaking the raw null value into the interval syntax: a range with
// both endpoints null is "NULL" (no consistent value), a null glb
// renders as "-∞" and a null lub as "+∞" (half-open ranges, e.g. from
// MIN/MAX groups where some repair empties the group).
func FormatRange(r Range) string {
	switch {
	case r.GLB.IsNull() && r.LUB.IsNull():
		return "NULL"
	case !r.GLB.IsNull() && r.GLB.Equal(r.LUB):
		return r.GLB.String()
	}
	glb, lub := r.GLB.String(), r.LUB.String()
	if r.GLB.IsNull() {
		glb = "-∞"
	}
	if r.LUB.IsNull() {
		lub = "+∞"
	}
	return fmt.Sprintf("[%s, %s]", glb, lub)
}

func accumulate(a, b Stats) Stats {
	a.RewriteTime += b.RewriteTime
	a.WitnessTime += b.WitnessTime
	a.ConstraintTime += b.ConstraintTime
	a.EncodeTime += b.EncodeTime
	a.SolveTime += b.SolveTime
	a.SATCalls += b.SATCalls
	a.MaxSATRuns += b.MaxSATRuns
	a.Vars += b.Vars
	a.Clauses += b.Clauses
	if b.MaxVars > a.MaxVars {
		a.MaxVars = b.MaxVars
	}
	if b.MaxClauses > a.MaxClauses {
		a.MaxClauses = b.MaxClauses
	}
	a.ConsistentPartSkips += b.ConsistentPartSkips
	a.WitnessAllocBytes += b.WitnessAllocBytes
	a.EncodeAllocBytes += b.EncodeAllocBytes
	a.SolveAllocBytes += b.SolveAllocBytes
	if b.HeapBytes > a.HeapBytes {
		a.HeapBytes = b.HeapBytes
	}
	a.GCCycles += b.GCCycles
	return a
}
