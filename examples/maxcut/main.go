// Command maxcut demonstrates the phenomenon behind Theorem III.1 of
// the paper: computing range consistent answers of a SUM aggregation
// query is NP-hard, because MAX-CUT reduces to the lub-answer.
//
// The encoding: a relation V(vertex, color) with key {vertex} holds two
// conflicting facts (v,'r') and (v,'b') per vertex, so the repairs of V
// are exactly the 2-colorings of the graph. A consistent relation
// E(u, v, w) holds the edges. The query
//
//	SELECT SUM(E.w)
//	FROM E, V v1, V v2
//	WHERE E.u = v1.vertex AND E.v = v2.vertex AND v1.color <> v2.color
//
// sums the weight of the edges whose endpoints received different
// colors — the cut weight. Its lub-answer over all repairs is therefore
// the maximum cut of the graph, which the program verifies against
// brute force.
//
// Run with:
//
//	go run ./examples/maxcut
package main

import (
	"fmt"
	"log"

	"aggcavsat"
	"aggcavsat/internal/cq"
)

type edge struct {
	u, v int
	w    int64
}

func main() {
	// A small weighted graph (5 vertices, 7 edges).
	edges := []edge{
		{0, 1, 3}, {0, 2, 1}, {1, 2, 4}, {1, 3, 2},
		{2, 4, 5}, {3, 4, 1}, {0, 4, 2},
	}
	const nVertices = 5

	schema := aggcavsat.NewSchema()
	must(schema.AddRelation(&aggcavsat.RelationSchema{
		Name: "V",
		Attrs: []aggcavsat.Attribute{
			{Name: "vertex", Kind: aggcavsat.KindInt},
			{Name: "color", Kind: aggcavsat.KindString},
		},
		Key: []int{0},
	}))
	must(schema.AddRelation(&aggcavsat.RelationSchema{
		Name: "E",
		Attrs: []aggcavsat.Attribute{
			{Name: "u", Kind: aggcavsat.KindInt},
			{Name: "v", Kind: aggcavsat.KindInt},
			{Name: "w", Kind: aggcavsat.KindInt},
		},
		Key: []int{0, 1},
	}))

	in := aggcavsat.NewInstance(schema)
	for v := 0; v < nVertices; v++ {
		in.MustInsert("V", aggcavsat.Int(int64(v)), aggcavsat.Str("r"))
		in.MustInsert("V", aggcavsat.Int(int64(v)), aggcavsat.Str("b"))
	}
	for _, e := range edges {
		in.MustInsert("E", aggcavsat.Int(int64(e.u)), aggcavsat.Int(int64(e.v)), aggcavsat.Int(e.w))
	}

	sys, err := aggcavsat.Open(in, aggcavsat.Options{})
	must(err)

	// The cut query needs a self-join on V, expressed algebraically
	// (the SQL front end also accepts it via aliases; shown both ways).
	q := aggcavsat.AggQuery{
		Op:     cq.Sum,
		AggVar: "w",
		Underlying: cq.Single(cq.CQ{
			Atoms: []cq.Atom{
				{Rel: "E", Args: []cq.Term{cq.V("u"), cq.V("v"), cq.V("w")}},
				{Rel: "V", Args: []cq.Term{cq.V("u"), cq.V("c1")}},
				{Rel: "V", Args: []cq.Term{cq.V("v"), cq.V("c2")}},
			},
			Conds: []cq.Condition{{Left: cq.V("c1"), Op: cq.OpNE, Right: cq.V("c2")}},
		}),
	}
	ans, stats, err := sys.RangeAnswers(q)
	must(err)
	r := ans[0]
	fmt.Printf("range consistent answer of the cut-weight query: [%s, %s]\n", r.GLB, r.LUB)
	fmt.Printf("(%d SAT calls, largest CNF %d vars / %d clauses)\n",
		stats.SATCalls, stats.MaxVars, stats.MaxClauses)

	// Brute-force MAX-CUT / MIN-CUT for comparison.
	best, worst := int64(0), int64(1)<<62
	for mask := 0; mask < 1<<nVertices; mask++ {
		var cut int64
		for _, e := range edges {
			if (mask>>e.u)&1 != (mask>>e.v)&1 {
				cut += e.w
			}
		}
		if cut > best {
			best = cut
		}
		if cut < worst {
			worst = cut
		}
	}
	fmt.Printf("brute force: min cut over all 2-colorings = %d, MAX-CUT = %d\n", worst, best)

	if r.LUB.AsInt() != best || r.GLB.AsInt() != worst {
		log.Fatalf("mismatch: lub %v vs max cut %d, glb %v vs min cut %d",
			r.LUB, best, r.GLB, worst)
	}
	fmt.Println("lub-answer = MAX-CUT: solving range-SUM solves an NP-hard problem (Theorem III.1).")

	// The same query through SQL aliases.
	res, err := sys.Query(`SELECT SUM(E.w) FROM E, V v1, V v2
		WHERE E.u = v1.vertex AND E.v = v2.vertex AND v1.color <> v2.color`)
	must(err)
	fmt.Printf("via SQL: %s\n", aggcavsat.FormatRange(res.Rows[0].Ranges[0]))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
