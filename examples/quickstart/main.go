// Command quickstart walks through the paper's running example
// (Table I): a small bank database whose CUSTOMER and ACCOUNTS relations
// violate their key constraints, queried under range-consistent-answer
// semantics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"aggcavsat"
)

func main() {
	schema := aggcavsat.NewSchema()
	must(schema.AddRelation(&aggcavsat.RelationSchema{
		Name: "Cust",
		Attrs: []aggcavsat.Attribute{
			{Name: "CID", Kind: aggcavsat.KindString},
			{Name: "NAME", Kind: aggcavsat.KindString},
			{Name: "CITY", Kind: aggcavsat.KindString},
		},
		Key: []int{0}, // CID
	}))
	must(schema.AddRelation(&aggcavsat.RelationSchema{
		Name: "Acc",
		Attrs: []aggcavsat.Attribute{
			{Name: "ACCID", Kind: aggcavsat.KindString},
			{Name: "TYPE", Kind: aggcavsat.KindString},
			{Name: "CITY", Kind: aggcavsat.KindString},
			{Name: "BAL", Kind: aggcavsat.KindInt},
		},
		Key: []int{0}, // ACCID
	}))
	must(schema.AddRelation(&aggcavsat.RelationSchema{
		Name: "CustAcc",
		Attrs: []aggcavsat.Attribute{
			{Name: "CID", Kind: aggcavsat.KindString},
			{Name: "ACCID", Kind: aggcavsat.KindString},
		},
		Key: []int{0, 1},
	}))

	in := aggcavsat.NewInstance(schema)
	str, num := aggcavsat.Str, aggcavsat.Int
	// Table I. Customer C2 appears twice with different cities, and
	// account A3 twice with different balances: the database is
	// inconsistent with respect to the keys.
	in.MustInsert("Cust", str("C1"), str("John"), str("LA"))
	in.MustInsert("Cust", str("C2"), str("Mary"), str("LA"))
	in.MustInsert("Cust", str("C2"), str("Mary"), str("SF"))
	in.MustInsert("Cust", str("C3"), str("Don"), str("SF"))
	in.MustInsert("Cust", str("C4"), str("Jen"), str("LA"))
	in.MustInsert("Acc", str("A1"), str("Check."), str("LA"), num(900))
	in.MustInsert("Acc", str("A2"), str("Check."), str("LA"), num(1000))
	in.MustInsert("Acc", str("A3"), str("Saving"), str("SJ"), num(1200))
	in.MustInsert("Acc", str("A3"), str("Saving"), str("SF"), num(-100))
	in.MustInsert("Acc", str("A4"), str("Saving"), str("SJ"), num(300))
	in.MustInsert("CustAcc", str("C1"), str("A1"))
	in.MustInsert("CustAcc", str("C2"), str("A2"))
	in.MustInsert("CustAcc", str("C2"), str("A3"))
	in.MustInsert("CustAcc", str("C3"), str("A4"))

	sys, err := aggcavsat.Open(in, aggcavsat.Options{})
	must(err)

	queries := []struct {
		title string
		sql   string
	}{
		{
			"Total balance of customer C2 (Section I: the answer is the interval [900, 2200])",
			`SELECT SUM(Acc.BAL) FROM Acc, CustAcc
			 WHERE Acc.ACCID = CustAcc.ACCID AND CustAcc.CID = 'C2'`,
		},
		{
			"Customers banking in their own city (Example IV.1: [1, 2])",
			`SELECT COUNT(*) FROM Cust, Acc, CustAcc
			 WHERE Cust.CID = CustAcc.CID AND Acc.ACCID = CustAcc.ACCID
			   AND Cust.CITY = Acc.CITY`,
		},
		{
			"Distinct account types (Example IV.3: exactly 2 in every repair)",
			`SELECT COUNT(DISTINCT TYPE) FROM Acc`,
		},
		{
			"Customers per city (Section IV-C: per-group intervals)",
			`SELECT CITY, COUNT(*) FROM Cust GROUP BY CITY ORDER BY CITY`,
		},
	}
	for _, q := range queries {
		fmt.Println("--", q.title)
		fmt.Println("  ", strings.Join(strings.Fields(q.sql), " "))
		res, err := sys.Query(q.sql)
		must(err)
		for _, row := range res.Rows {
			var cells []string
			for _, v := range row.Key {
				cells = append(cells, v.String())
			}
			for _, r := range row.Ranges {
				cells = append(cells, aggcavsat.FormatRange(r))
			}
			fmt.Println("  =>", strings.Join(cells, " | "))
		}
		fmt.Printf("   (encode %v, solve %v, %d SAT calls, largest CNF %d vars / %d clauses)\n\n",
			res.Stats.WitnessTime+res.Stats.EncodeTime,
			res.Stats.SolveTime, res.Stats.SATCalls,
			res.Stats.MaxVars, res.Stats.MaxClauses)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
