// Command tpch runs the paper's synthetic workload end to end: generate
// TPC-H data, inject key violations (group sizes uniform in [2,7], as in
// Section VI-A1), and compute range consistent answers of the nine
// evaluation queries, comparing AggCAvSAT's SAT pipeline against the
// ConQuer-style rewriting baseline where the query is in C_aggforest.
//
// Run with:
//
//	go run ./examples/tpch [-sf 0.002] [-inconsistency 10]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"aggcavsat"
	"aggcavsat/internal/conquer"
	"aggcavsat/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor (1.0 ≈ 6M lineitems)")
	pct := flag.Float64("inconsistency", 10, "percent of tuples violating keys")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	base := tpch.Generate(*sf, *seed)
	in, err := tpch.Inject(base, tpch.InjectOptions{
		Percent: *pct, MinGroup: 2, MaxGroup: 7, Seed: *seed + 1,
	})
	must(err)

	fmt.Printf("TPC-H sf=%g, target inconsistency %.0f%%:\n", *sf, *pct)
	for _, st := range in.KeyInconsistency() {
		fmt.Printf("  %-9s %8d tuples  %5.1f%% violating (largest group %d)\n",
			st.Rel, st.Facts, st.Percent(), st.LargestGroup)
	}
	fmt.Println()

	sys, err := aggcavsat.Open(in, aggcavsat.Options{})
	must(err)
	baseline := conquer.New(in)

	queries := append(tpch.ScalarQueries(), tpch.GroupedQueries()...)
	for _, q := range queries {
		tr, err := q.Translate()
		must(err)

		start := time.Now()
		res, err := sys.Query(q.SQL)
		must(err)
		satTime := time.Since(start)

		start = time.Now()
		_, cqErr := baseline.RangeAnswers(tr.Aggs[0].Query)
		conquerTime := time.Since(start)
		conquerCell := conquerTime.Round(time.Millisecond).String()
		if errors.Is(cqErr, conquer.ErrNotInClass) {
			conquerCell = "not in C_aggforest"
		} else if cqErr != nil {
			must(cqErr)
		}

		first := "-"
		if len(res.Rows) > 0 {
			first = aggcavsat.FormatRange(res.Rows[0].Ranges[0])
			if len(res.Rows[0].Key) > 0 {
				first = fmt.Sprintf("%s: %s", res.Rows[0].Key, first)
			}
		}
		fmt.Printf("%-5s AggCAvSAT %8v (%3d SAT calls, %d groups)   ConQuer %-18s   first answer %s\n",
			q.Name, satTime.Round(time.Millisecond), res.Stats.SATCalls, len(res.Rows),
			conquerCell, first)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
