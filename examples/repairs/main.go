// Command repairs explores the repair semantics underneath the range
// consistent answers: it prints every repair of a small inconsistent
// database, then contrasts the three query-answering semantics —
// certain (CONS), possible (POSS), and range — on the same data.
//
// Run with:
//
//	go run ./examples/repairs
package main

import (
	"fmt"
	"log"
	"strings"

	"aggcavsat"
	"aggcavsat/internal/core"
	"aggcavsat/internal/cq"
	"aggcavsat/internal/db"
	"aggcavsat/internal/exhaustive"
)

func main() {
	schema := aggcavsat.NewSchema()
	must(schema.AddRelation(&aggcavsat.RelationSchema{
		Name: "Emp",
		Attrs: []aggcavsat.Attribute{
			{Name: "id", Kind: aggcavsat.KindString},
			{Name: "dept", Kind: aggcavsat.KindString},
			{Name: "salary", Kind: aggcavsat.KindInt},
		},
		Key: []int{0},
	}))
	in := aggcavsat.NewInstance(schema)
	// Two conflicting records for Bob (different departments and
	// salaries) and one for Carol.
	in.MustInsert("Emp", aggcavsat.Str("alice"), aggcavsat.Str("R&D"), aggcavsat.Int(120))
	in.MustInsert("Emp", aggcavsat.Str("bob"), aggcavsat.Str("R&D"), aggcavsat.Int(95))
	in.MustInsert("Emp", aggcavsat.Str("bob"), aggcavsat.Str("Sales"), aggcavsat.Int(80))
	in.MustInsert("Emp", aggcavsat.Str("carol"), aggcavsat.Str("Sales"), aggcavsat.Int(100))

	fmt.Println("The inconsistent instance (bob violates the key):")
	for _, f := range in.Facts() {
		fmt.Printf("  f%d: %v\n", f.ID+1, f.Tuple)
	}

	fmt.Println("\nIts repairs (maximal consistent subsets):")
	n := 0
	err := exhaustive.RepairsKeys(in, func(keep []bool) bool {
		n++
		var facts []string
		for id, k := range keep {
			if k {
				facts = append(facts, fmt.Sprintf("f%d", id+1))
			}
		}
		fmt.Printf("  repair %d: {%s}\n", n, strings.Join(facts, ", "))
		return true
	})
	must(err)

	// The three semantics for the non-aggregate query "which departments
	// have an employee?".
	eng, err := core.New(in, core.Options{})
	must(err)
	q := cq.Single(cq.CQ{
		Head:  []string{"dept"},
		Atoms: []cq.Atom{{Rel: "Emp", Args: []cq.Term{cq.V("id"), cq.V("dept"), cq.V("sal")}}},
	})
	cons, _, err := eng.ConsistentAnswers(q)
	must(err)
	poss, _, err := eng.PossibleAnswers(q)
	must(err)
	fmt.Printf("\nq(dept) :- Emp(id, dept, salary)\n")
	fmt.Printf("  certain answers  (in every repair): %s\n", tuples(cons))
	fmt.Printf("  possible answers (in some repair):  %s\n", tuples(poss))

	// Range semantics for aggregates over the same data.
	sys, err := aggcavsat.Open(in, aggcavsat.Options{})
	must(err)
	for _, sql := range []string{
		`SELECT SUM(salary) FROM Emp`,
		`SELECT dept, COUNT(*) FROM Emp GROUP BY dept ORDER BY dept`,
		`SELECT MAX(salary) FROM Emp WHERE dept = 'Sales'`,
	} {
		res, err := sys.Query(sql)
		must(err)
		fmt.Printf("\n%s\n", sql)
		for _, row := range res.Rows {
			var cells []string
			for _, v := range row.Key {
				cells = append(cells, v.String())
			}
			for _, r := range row.Ranges {
				cells = append(cells, aggcavsat.FormatRange(r))
			}
			fmt.Printf("  => %s\n", strings.Join(cells, " | "))
		}
	}
	fmt.Println("\nReading: SUM ranges over both of bob's salaries; the Sales group")
	fmt.Println("is only a consistent answer if it appears in *every* repair —")
	fmt.Println("carol guarantees that here, while R&D's count depends on bob.")
}

func tuples(ts []db.Tuple) string {
	var out []string
	for _, t := range ts {
		out = append(out, t[0].String())
	}
	if len(out) == 0 {
		return "(none)"
	}
	return strings.Join(out, ", ")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
