// Command medigap runs the paper's real-world workload (Section VI-B):
// aggregation queries over the Medigap insurance database, which is
// inconsistent with respect to two functional dependencies and one
// denial constraint (Table IVb) — exercising Reduction V.1, where the
// hard clauses come from minimal violations and near-violations rather
// than key-equal groups.
//
// Run with:
//
//	go run ./examples/medigap [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"aggcavsat"
	"aggcavsat/internal/medigap"
)

func main() {
	scale := flag.Float64("scale", 0.1, "dataset scale (1.0 ≈ the paper's 61K tuples)")
	seed := flag.Uint64("seed", 2022, "generator seed")
	flag.Parse()

	in, err := medigap.Generate(*scale, *seed)
	must(err)
	dcs, err := medigap.Constraints(in.Schema())
	must(err)

	var total int
	for _, rs := range in.Schema().Relations() {
		n := in.RelSize(rs.Name)
		total += n
		fmt.Printf("%-4s %6d tuples\n", rs.Name, n)
	}
	fmt.Printf("total %d tuples, %d denial constraints (2 FDs + 1 DC)\n\n", total, len(dcs))

	sys, err := aggcavsat.Open(in, aggcavsat.Options{DenialConstraints: dcs})
	must(err)

	for _, q := range medigap.Queries() {
		start := time.Now()
		res, err := sys.Query(q.SQL)
		must(err)
		elapsed := time.Since(start)
		fmt.Printf("%-5s %s\n", q.Name, strings.Join(strings.Fields(q.SQL), " "))
		shown := res.Rows
		if len(shown) > 5 {
			shown = shown[:5]
		}
		for _, row := range shown {
			var cells []string
			for _, v := range row.Key {
				cells = append(cells, v.String())
			}
			for _, r := range row.Ranges {
				cells = append(cells, aggcavsat.FormatRange(r))
			}
			fmt.Println("   =>", strings.Join(cells, " | "))
		}
		if len(res.Rows) > len(shown) {
			fmt.Printf("   … %d more groups\n", len(res.Rows)-len(shown))
		}
		fmt.Printf("   %v total (constraints %v, witnesses %v, encode %v, solve %v, %d SAT calls)\n\n",
			elapsed.Round(time.Millisecond),
			res.Stats.ConstraintTime.Round(time.Millisecond),
			res.Stats.WitnessTime.Round(time.Millisecond),
			res.Stats.EncodeTime.Round(time.Millisecond),
			res.Stats.SolveTime.Round(time.Millisecond),
			res.Stats.SATCalls)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
