module aggcavsat

go 1.22
